package detect

import (
	"math"
	"testing"

	"leaksig/internal/capture"
	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
	"leaksig/internal/signature"
)

func sigSet(sigs ...*signature.Signature) *signature.Set {
	for i, s := range sigs {
		s.ID = i
	}
	return &signature.Set{Signatures: sigs}
}

func adPkt(host, path string) *httpmodel.Packet {
	return httpmodel.Get(host, path).Dest(ipaddr.MustParse("203.0.113.5"), 80).Build()
}

func TestMatchPacketConjunction(t *testing.T) {
	set := sigSet(
		&signature.Signature{Tokens: []string{"udid=f3a9", "zone="}},
		&signature.Signature{Tokens: []string{"imei=3539"}},
	)
	e := NewEngine(set)

	both := adPkt("x.example", "/a?zone=1&udid=f3a9")
	if got := e.MatchPacket(both); len(got) != 1 || got[0] != 0 {
		t.Errorf("MatchPacket(both tokens) = %v", got)
	}
	onlyOne := adPkt("x.example", "/a?udid=f3a9")
	if got := e.MatchPacket(onlyOne); len(got) != 0 {
		t.Errorf("conjunction violated: %v", got)
	}
	other := adPkt("x.example", "/a?imei=3539185")
	if got := e.MatchPacket(other); len(got) != 1 || got[0] != 1 {
		t.Errorf("MatchPacket(imei) = %v", got)
	}
	if !e.Matches(both) || e.Matches(adPkt("x.example", "/plain")) {
		t.Error("Matches inconsistent")
	}
}

func TestMatchHostConstraint(t *testing.T) {
	set := sigSet(&signature.Signature{
		Tokens:     []string{"udid=f3a9"},
		HostSuffix: "admob.com",
	})
	e := NewEngine(set)
	if !e.Matches(adPkt("r.admob.com", "/a?udid=f3a9")) {
		t.Error("matching host rejected")
	}
	if e.Matches(adPkt("evil.example", "/a?udid=f3a9")) {
		t.Error("non-matching host accepted")
	}
}

func TestMatchTokenInCookieAndBody(t *testing.T) {
	set := sigSet(&signature.Signature{Tokens: []string{"device=f3a9c1d2"}})
	e := NewEngine(set)
	inCookie := httpmodel.Get("x.example", "/p").Dest(1, 80).
		Cookie("device=f3a9c1d2").Build()
	inBody := httpmodel.Post("x.example", "/p").Dest(1, 80).
		BodyString("a=1&device=f3a9c1d2").Build()
	if !e.Matches(inCookie) || !e.Matches(inBody) {
		t.Error("token in cookie/body not matched")
	}
}

func TestTokenCannotSpanFields(t *testing.T) {
	// "f3a9" at the end of the request line plus "c1d2" at the start of the
	// cookie must not satisfy the token "f3a9c1d2" because Content()
	// separates fields with newlines.
	set := sigSet(&signature.Signature{Tokens: []string{"f3a9c1d2"}})
	e := NewEngine(set)
	p := httpmodel.Get("x.example", "/p?x=f3a9").Dest(1, 80).Cookie("c1d2=v").Build()
	if e.Matches(p) {
		t.Error("token matched across field boundary")
	}
}

func TestEmptySignatureNeverMatches(t *testing.T) {
	set := sigSet(&signature.Signature{Tokens: nil})
	e := NewEngine(set)
	if e.Matches(adPkt("x.example", "/anything")) {
		t.Error("token-less signature matched")
	}
}

func TestSharedTokensAcrossSignatures(t *testing.T) {
	// Two signatures sharing a token must each evaluate independently.
	set := sigSet(
		&signature.Signature{Tokens: []string{"shared-tok", "alpha-only"}},
		&signature.Signature{Tokens: []string{"shared-tok", "beta-only"}},
	)
	e := NewEngine(set)
	alpha := adPkt("x.example", "/p?shared-tok&alpha-only")
	got := e.MatchPacket(alpha)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("MatchPacket = %v", got)
	}
}

func TestMatchSetParallelAgreesWithSerial(t *testing.T) {
	set := sigSet(
		&signature.Signature{Tokens: []string{"udid=f3a9"}},
		&signature.Signature{Tokens: []string{"imei=3539"}, HostSuffix: "ad-maker.info"},
	)
	e := NewEngine(set)
	var ds capture.Set
	for i := 0; i < 200; i++ {
		switch i % 4 {
		case 0:
			ds.Append(adPkt("x.example", "/a?udid=f3a9"))
		case 1:
			ds.Append(adPkt("ad-maker.info", "/a?imei=3539"))
		case 2:
			ds.Append(adPkt("other.example", "/a?imei=3539")) // host constraint fails
		default:
			ds.Append(adPkt("x.example", "/benign"))
		}
	}
	par := e.MatchSet(&ds)
	for i, p := range ds.Packets {
		if par[i] != e.Matches(p) {
			t.Fatalf("parallel[%d] = %v disagrees with serial", i, par[i])
		}
	}
	if !par[0] || !par[1] || par[2] || par[3] {
		t.Errorf("match pattern wrong: %v", par[:4])
	}
}

func TestEvaluateRatesPaperEquations(t *testing.T) {
	// Construct a dataset with exact known counts:
	// 10 sensitive (8 detected incl. all 3 training, 2 missed),
	// 20 normal (1 false alarm).
	set := sigSet(&signature.Signature{Tokens: []string{"udid=f3a9"}})
	e := NewEngine(set)
	var ds capture.Set
	var sens []bool
	for i := 0; i < 8; i++ {
		ds.Append(adPkt("x.example", "/s?udid=f3a9"))
		sens = append(sens, true)
	}
	for i := 0; i < 2; i++ {
		ds.Append(adPkt("x.example", "/s?imsi=440100000000000")) // sensitive but missed
		sens = append(sens, true)
	}
	for i := 0; i < 19; i++ {
		ds.Append(adPkt("x.example", "/benign"))
		sens = append(sens, false)
	}
	ds.Append(adPkt("x.example", "/fp?udid=f3a9page")) // normal but matches
	sens = append(sens, false)

	const n = 3
	r := Evaluate(e, &ds, sens, n)
	if r.SensitiveTotal != 10 || r.NormalTotal != 20 {
		t.Fatalf("totals = %d/%d", r.SensitiveTotal, r.NormalTotal)
	}
	if r.DetectedSensitive != 8 || r.UndetectedSensitive != 2 || r.DetectedNormal != 1 {
		t.Fatalf("counts = %+v", r)
	}
	wantTP := float64(8-n) / float64(10-n)
	wantFN := 2.0 / float64(10-n)
	wantFP := 1.0 / float64(20-n)
	if math.Abs(r.TruePositiveRate-wantTP) > 1e-12 ||
		math.Abs(r.FalseNegativeRate-wantFN) > 1e-12 ||
		math.Abs(r.FalsePositiveRate-wantFP) > 1e-12 {
		t.Errorf("rates = %+v, want TP %v FN %v FP %v", r, wantTP, wantFN, wantFP)
	}
	// TP + FN must sum to 1 under the paper's equations.
	if math.Abs(r.TruePositiveRate+r.FalseNegativeRate-1) > 1e-12 {
		t.Errorf("TP + FN = %v", r.TruePositiveRate+r.FalseNegativeRate)
	}
}

func TestEvaluateDegenerateDenominators(t *testing.T) {
	set := sigSet(&signature.Signature{Tokens: []string{"udid="}})
	e := NewEngine(set)
	var ds capture.Set
	ds.Append(adPkt("x.example", "/s?udid=1"))
	r := Evaluate(e, &ds, []bool{true}, 1) // SensTotal == N
	if r.TruePositiveRate != 0 || r.FalseNegativeRate != 0 || r.FalsePositiveRate != 0 {
		t.Errorf("degenerate rates = %+v", r)
	}
}

func TestEvaluatePanicsOnLabelMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	e := NewEngine(sigSet())
	var ds capture.Set
	ds.Append(adPkt("x.example", "/"))
	Evaluate(e, &ds, nil, 0)
}

func TestEmptyEngine(t *testing.T) {
	e := NewEngine(&signature.Set{})
	if e.Matches(adPkt("x.example", "/?udid=1")) {
		t.Error("empty engine matched")
	}
	var ds capture.Set
	out := e.MatchSet(&ds)
	if len(out) != 0 {
		t.Error("empty set match")
	}
}
