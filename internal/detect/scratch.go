package detect

import "leaksig/internal/httpmodel"

// Scratch holds every piece of per-packet mutable state one matching call
// needs: the automaton state, the token-occurrence bitset, the
// remaining-token counters, the host-bucket marks, and the matched-ID
// buffer. A zero Scratch is ready to use — MatchInto sizes it for its
// engine on first use and re-sizes it automatically whenever it is handed
// to a different (e.g. freshly reloaded) engine, so a stale scratch can
// never index a new automaton. After the first call with a given engine,
// matching through a Scratch performs no allocation.
//
// A Scratch is not safe for concurrent use; give each goroutine its own.
type Scratch struct {
	owner *Engine

	state int32    // automaton state threaded across chunks of one field
	occ   []uint64 // raw-content token-occurrence bitset, matcher.BitsetWords() words

	// Decode-view state, allocated only when the engine's set opts into
	// views: occView[v] is the occurrence bitset for view v's decoded
	// spans, occCur is the bitset the scan is currently filling (the raw
	// occ between Field and the first ViewField), and views holds the
	// decoder's reusable buffers.
	occView [httpmodel.NumViews][]uint64
	occCur  []uint64
	views   httpmodel.ViewScratch

	// Subsequence-verify buffers (kinds.go): the materialized stream
	// content and the raw-field staging area for view decoding.
	content  []byte
	fieldBuf []byte

	// Per-signature countdown of tokens still missing, lazily reset via
	// the generation stamp: a signature whose gen is stale is implicitly
	// at its full needed count. cur==0 is never a valid generation.
	rem []int32
	gen []uint32

	// Host prefilter: bucketGen[b]==cur marks bucket b eligible for the
	// current packet.
	bucketGen []uint32

	cur uint32

	cand    []int32 // candidate signature indices, later sorted
	matched []int   // matched signature IDs, in set order
}

// init (re)sizes the scratch for e and invalidates all lazy state.
func (sc *Scratch) init(e *Engine) {
	sc.owner = e
	sc.occ = make([]uint64, e.matcher.BitsetWords())
	sc.occCur = sc.occ
	for v := httpmodel.View(0); v < httpmodel.NumViews; v++ {
		if e.viewMask.Has(v) {
			sc.occView[v] = make([]uint64, e.matcher.BitsetWords())
		} else {
			sc.occView[v] = nil
		}
	}
	sc.rem = make([]int32, len(e.needed))
	sc.gen = make([]uint32, len(e.needed))
	sc.bucketGen = make([]uint32, e.numBuckets)
	sc.cur = 0
	if cap(sc.cand) < len(e.needed) {
		sc.cand = make([]int32, 0, len(e.needed))
	}
	if cap(sc.matched) < len(e.needed) {
		sc.matched = make([]int, 0, len(e.needed))
	}
}

// begin starts a new packet: fresh generation, cleared bitset.
func (sc *Scratch) begin() {
	sc.cur++
	if sc.cur == 0 { // generation counter wrapped: hard-reset the stamps
		for i := range sc.gen {
			sc.gen[i] = 0
		}
		for i := range sc.bucketGen {
			sc.bucketGen[i] = 0
		}
		sc.cur = 1
	}
	for i := range sc.occ {
		sc.occ[i] = 0
	}
	if sc.owner.viewMask != 0 {
		for v := range sc.occView {
			for i := range sc.occView[v] {
				sc.occView[v][i] = 0
			}
		}
	}
	sc.occCur = sc.occ
	sc.state = 0
}

// Field, Text, Bytes and ViewField implement httpmodel.ViewVisitor: the
// automaton state resets at each field (and decoded-span) boundary and
// threads across the chunks within one, so tokens may span chunks but
// never fields, and never two decoded spans.

// Field resets the automaton at a content-field boundary and retargets
// the scan at the raw occurrence bitset.
func (sc *Scratch) Field() {
	sc.state = 0
	sc.occCur = sc.occ
}

// ViewField resets the automaton at a decoded-span boundary and
// retargets the scan at the view's occurrence bitset.
func (sc *Scratch) ViewField(v httpmodel.View) {
	sc.state = 0
	sc.occCur = sc.occView[v]
}

// Text scans one string chunk of the current field.
func (sc *Scratch) Text(s string) {
	sc.state = sc.owner.matcher.ScanString(sc.state, s, sc.occCur)
}

// Bytes scans one byte chunk of the current field.
func (sc *Scratch) Bytes(b []byte) {
	sc.state = sc.owner.matcher.ScanBytes(sc.state, b, sc.occCur)
}
