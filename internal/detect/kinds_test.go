package detect

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"math/rand"
	"net/url"
	"testing"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
	"leaksig/internal/signature"
)

// viewJoined materializes one view's content stream for a packet the way
// verifyOrdered does: each field's decoded spans, '\n'-terminated, in
// field order.
func viewJoined(p *httpmodel.Packet, v httpmodel.View) []byte {
	var vs httpmodel.ViewScratch
	var buf []byte
	reqline := []byte(p.Method + " " + p.Path + " " + p.Proto)
	cookie := []byte(p.Cookie())
	for _, field := range [][]byte{reqline, cookie, p.Body} {
		httpmodel.VisitDecodedView(v, field, &vs, func(dec []byte) {
			buf = append(buf, dec...)
			buf = append(buf, '\n')
		})
	}
	return buf
}

// refKindMatch is the per-kind reference for '\n'-free tokens: a
// conjunction token counts as present when it occurs in the raw content
// or in any opted view's joined stream; a subsequence matches when the
// ordered walk succeeds over the raw content or over any single opted
// view's joined stream.
func refKindMatch(set *signature.Set, p *httpmodel.Packet) []int {
	raw := p.Content()
	streams := map[httpmodel.View][]byte{}
	stream := func(v httpmodel.View) []byte {
		s, ok := streams[v]
		if !ok {
			s = viewJoined(p, v)
			streams[v] = s
		}
		return s
	}
	var out []int
	for _, sig := range set.Signatures {
		if len(sig.Tokens) == 0 || !signature.ValidKind(sig.Kind) {
			continue
		}
		if !signature.HostMatchesSuffix(p.Host, sig.HostSuffix) {
			continue
		}
		mask := httpmodel.ViewMaskOf(sig.Views)
		matched := false
		if sig.EffectiveKind() == signature.KindSubsequence {
			matched = signature.MatchesOrdered(sig.Tokens, raw)
			for v := httpmodel.View(0); v < httpmodel.NumViews && !matched; v++ {
				if mask.Has(v) {
					matched = signature.MatchesOrdered(sig.Tokens, stream(v))
				}
			}
		} else {
			matched = true
			for _, tok := range sig.Tokens {
				present := bytes.Contains(raw, []byte(tok))
				for v := httpmodel.View(0); v < httpmodel.NumViews && !present; v++ {
					if mask.Has(v) {
						present = bytes.Contains(stream(v), []byte(tok))
					}
				}
				if !present {
					matched = false
					break
				}
			}
		}
		if matched {
			out = append(out, sig.ID)
		}
	}
	return out
}

// TestDifferentialKindedEngineVsReference fuzzes mixed-kind sets —
// conjunctions with and without views, subsequence signatures — against
// packets whose bodies carry vocab tokens in the clear or base64-, hex-,
// URL- or gzip-encoded, and asserts the compiled engine agrees with the
// per-kind reference semantics. Tokens are '\n'-free so per-field and
// whole-content containment coincide (the raw field-boundary cases are
// TestDifferentialEngineVsReference's job).
func TestDifferentialKindedEngineVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vocab := []string{
		"imei=356938035", "aid=9774d56d68", "sessAAAA", "zone=42&b",
		"carrier=docomo", "lat=35.6812&x",
	}
	hosts := []string{"a.ads.example", "track.example", "cdn.other"}
	suffixes := []string{"", "ads.example", "example", "absent.example"}
	allViews := signature.KnownViews()

	encodeBody := func(clear []byte) []byte {
		switch rng.Intn(5) {
		case 0:
			return append([]byte("p="), []byte(base64.StdEncoding.EncodeToString(clear))...)
		case 1:
			return append([]byte("p="), []byte(hex.EncodeToString(clear))...)
		case 2:
			return []byte("p=" + url.QueryEscape(string(clear)))
		case 3:
			var b bytes.Buffer
			zw := gzip.NewWriter(&b)
			zw.Write(clear)
			zw.Close()
			return b.Bytes()
		}
		return clear
	}

	randPacket := func() *httpmodel.Packet {
		clear := ""
		for i := 0; i < 1+rng.Intn(4); i++ {
			clear += vocab[rng.Intn(len(vocab))] + "&"
		}
		path := "/c"
		if rng.Intn(3) == 0 {
			path = "/c?" + vocab[rng.Intn(len(vocab))]
		}
		return httpmodel.Post(hosts[rng.Intn(len(hosts))], path).
			Dest(ipaddr.MustParse("203.0.113.9"), 80).
			Body(encodeBody([]byte(clear))).
			Build()
	}

	randSig := func(id int) *signature.Signature {
		nTok := 1 + rng.Intn(3)
		toks := make([]string, nTok)
		for i := range toks {
			toks[i] = vocab[rng.Intn(len(vocab))]
		}
		sig := &signature.Signature{
			ID:         id,
			Tokens:     toks,
			HostSuffix: suffixes[rng.Intn(len(suffixes))],
		}
		switch rng.Intn(4) {
		case 0:
			sig.Kind = signature.KindConjunction
		case 1, 2:
			sig.Kind = signature.KindSubsequence
		}
		for _, v := range allViews {
			if rng.Intn(3) == 0 {
				sig.Views = append(sig.Views, v)
			}
		}
		return sig
	}

	for iter := 0; iter < 200; iter++ {
		nSigs := 1 + rng.Intn(6)
		sigs := make([]*signature.Signature, nSigs)
		for i := range sigs {
			sigs[i] = randSig(i)
		}
		set := &signature.Set{Signatures: sigs}
		eng := NewEngine(set)
		sc := eng.NewScratch()
		for k := 0; k < 8; k++ {
			p := randPacket()
			want := refKindMatch(set, p)
			if got := eng.MatchInto(p, sc); !equalIDs(got, want) {
				t.Fatalf("iter %d: MatchInto=%v ref=%v\nsigs=%s\npacket host=%s path=%q body=%q",
					iter, got, want, sigDump(sigs), p.Host, p.Path, p.Body)
			}
			if got := eng.MatchPacket(p); !equalIDs(got, want) {
				t.Fatalf("iter %d: MatchPacket=%v ref=%v", iter, got, want)
			}
		}
	}
}

// TestLegacyKindAbsentSet proves wire compatibility: a set serialized
// before kinds existed (no "kind" field anywhere) parses, compiles and
// matches identically to the same set with the kind spelled out, and its
// signature keys are byte-identical to the legacy key format.
func TestLegacyKindAbsentSet(t *testing.T) {
	legacyJSON := `{
	  "signatures": [
	    {"id": 0, "tokens": ["udid=f3a9", "zone="], "cluster_size": 3},
	    {"id": 1, "tokens": ["imei=3569"], "host_suffix": "ads.example", "cluster_size": 2}
	  ],
	  "training_size": 5
	}`
	legacy, err := signature.ReadJSON(bytes.NewReader([]byte(legacyJSON)))
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Validate(); err != nil {
		t.Fatalf("legacy set failed validation: %v", err)
	}
	explicit := &signature.Set{TrainingSize: 5}
	for _, s := range legacy.Signatures {
		c := *s
		c.Kind = signature.KindConjunction
		explicit.Signatures = append(explicit.Signatures, &c)
	}
	for i := range legacy.Signatures {
		lk, ek := legacy.Signatures[i].Key(), explicit.Signatures[i].Key()
		if lk != ek {
			t.Errorf("sig %d: kind-absent key %q != explicit-conjunction key %q", i, lk, ek)
		}
	}
	// The legacy key format itself: host + NUL + sorted tokens.
	if want := "\x00udid=f3a9\x00zone="; legacy.Signatures[0].Key() != want {
		t.Errorf("legacy key format shifted: %q", legacy.Signatures[0].Key())
	}

	le, ee := NewEngine(legacy), NewEngine(explicit)
	pkts := []*httpmodel.Packet{
		adPkt("x.ads.example", "/a?zone=1&udid=f3a9"),
		adPkt("x.ads.example", "/a?imei=3569"),
		adPkt("elsewhere.example", "/a?imei=3569"),
		adPkt("x.ads.example", "/benign"),
	}
	for i, p := range pkts {
		lg, eg := le.MatchPacket(p), ee.MatchPacket(p)
		if !equalIDs(lg, eg) {
			t.Errorf("packet %d: legacy=%v explicit=%v", i, lg, eg)
		}
	}

	// Re-serializing the legacy set must not invent a kind field.
	var buf bytes.Buffer
	if err := legacy.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"kind"`)) {
		t.Errorf("kind-absent set gained a kind on rewrite:\n%s", buf.String())
	}
}

// TestKindedSetJSONRoundTrip pushes a mixed-kind set through the wire
// format and asserts the compiled behavior survives.
func TestKindedSetJSONRoundTrip(t *testing.T) {
	set := sigSet(
		&signature.Signature{Tokens: []string{"imei=3569"}},
		&signature.Signature{Kind: signature.KindSubsequence,
			Tokens: []string{"imei=3569", "aid=9774"}, Views: []string{"base64"}},
	)
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := signature.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	b2, _ := json.Marshal(set)
	json.Unmarshal(b2, &raw)

	secret := "imei=3569&aid=9774"
	enc := base64.StdEncoding.EncodeToString([]byte(secret))
	p := httpmodel.Post("x.example", "/c").
		Dest(ipaddr.MustParse("203.0.113.9"), 80).
		Body([]byte("p=" + enc)).Build()
	eng := NewEngine(back)
	got := eng.MatchPacket(p)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("round-tripped subsequence+views signature did not match: %v", got)
	}
}

// TestUnknownKindNeverMatches pins the compile guard: a signature with a
// kind this engine cannot compile is inert rather than a crash or a
// misfire as a conjunction.
func TestUnknownKindNeverMatches(t *testing.T) {
	set := sigSet(
		&signature.Signature{Kind: "regex", Tokens: []string{"imei="}},
		&signature.Signature{Tokens: []string{"imei="}},
	)
	eng := NewEngine(set)
	got := eng.MatchPacket(adPkt("x.example", "/a?imei=3569"))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("unknown-kind signature leaked into matching: %v", got)
	}
}

// TestKindedZeroAllocFastPath proves a view-free mixed set (conjunctions
// plus a view-less subsequence) still matches without allocating after
// warm-up: the view machinery only costs when a compiled signature
// actually opts into views.
func TestKindedZeroAllocFastPath(t *testing.T) {
	set := sigSet(
		&signature.Signature{Tokens: []string{"udid=f3a9", "zone="}},
		&signature.Signature{Kind: signature.KindSubsequence,
			Tokens: []string{"udid=f3a9", "zone="}},
	)
	e := NewEngine(set)
	sc := e.NewScratch()
	pkts := []*httpmodel.Packet{
		adPkt("x.ads.example", "/a?udid=f3a9&zone=1"), // both kinds match
		adPkt("x.ads.example", "/a?zone=1&udid=f3a9"), // conjunction only
		adPkt("x.ads.example", "/benign"),
	}
	for _, p := range pkts {
		e.MatchInto(p, sc)
	}
	for i, p := range pkts {
		p := p
		allocs := testing.AllocsPerRun(200, func() { e.MatchInto(p, sc) })
		if allocs != 0 {
			t.Errorf("packet %d: MatchInto allocated %v per run, want 0", i, allocs)
		}
	}
	if got := e.MatchInto(pkts[0], sc); len(got) != 2 {
		t.Fatalf("both kinds should match ordered packet: %v", got)
	}
	if got := e.MatchInto(pkts[1], sc); len(got) != 1 || got[0] != 0 {
		t.Fatalf("reversed packet should match the conjunction only: %v", got)
	}
}
