package ipaddr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
	}{
		{"0.0.0.0", 0},
		{"255.255.255.255", 0xffffffff},
		{"192.0.2.7", 0xc0000207},
		{"10.1.2.3", 0x0a010203},
		{"1.2.3.4", 0x01020304},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q) error: %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %#x, want %#x", c.in, got, c.want)
		}
		if got.String() != c.in {
			t.Errorf("Parse(%q).String() = %q", c.in, got.String())
		}
	}
}

func TestParseInvalid(t *testing.T) {
	bad := []string{
		"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1.2.3.-4",
		"a.b.c.d", "1..2.3", "01.2.3.4", "1.2.3.4 ", " 1.2.3.4",
		"1.2.3.04", "1234.2.3.4",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestOctetsRoundTrip(t *testing.T) {
	a := MustParse("203.0.113.77")
	o := a.Octets()
	if o != [4]byte{203, 0, 113, 77} {
		t.Fatalf("Octets = %v", o)
	}
	if FromOctets(o[0], o[1], o[2], o[3]) != a {
		t.Fatal("FromOctets round trip failed")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"0.0.0.0", "0.0.0.0", 32},
		{"255.255.255.255", "255.255.255.255", 32},
		{"0.0.0.0", "128.0.0.0", 0},
		{"192.0.2.1", "192.0.2.2", 30},
		{"192.0.2.0", "192.0.3.0", 23},
		{"10.0.0.0", "11.0.0.0", 7},
		{"172.16.0.1", "172.16.0.0", 31},
	}
	for _, c := range cases {
		got := CommonPrefixLen(MustParse(c.a), MustParse(c.b))
		if got != c.want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCommonPrefixLenProperties(t *testing.T) {
	// Symmetry and self-identity.
	f := func(a, b uint32) bool {
		x, y := Addr(a), Addr(b)
		if CommonPrefixLen(x, x) != 32 {
			return false
		}
		return CommonPrefixLen(x, y) == CommonPrefixLen(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// The prefix up to the returned length is actually equal.
	g := func(a, b uint32) bool {
		n := CommonPrefixLen(Addr(a), Addr(b))
		m := uint32(Mask(n))
		return a&m == b&m
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		bits int
		want string
	}{
		{0, "0.0.0.0"},
		{8, "255.0.0.0"},
		{16, "255.255.0.0"},
		{24, "255.255.255.0"},
		{25, "255.255.255.128"},
		{32, "255.255.255.255"},
	}
	for _, c := range cases {
		if got := Mask(c.bits).String(); got != c.want {
			t.Errorf("Mask(%d) = %s, want %s", c.bits, got, c.want)
		}
	}
	if Mask(-3) != 0 || Mask(40) != 0xffffffff {
		t.Error("Mask clamp failed")
	}
}

func TestBlock(t *testing.T) {
	b := MustParseBlock("203.0.113.0/24")
	if b.String() != "203.0.113.0/24" {
		t.Fatalf("String = %s", b.String())
	}
	if b.Size() != 256 {
		t.Fatalf("Size = %d", b.Size())
	}
	if !b.Contains(MustParse("203.0.113.255")) {
		t.Error("Contains(203.0.113.255) = false")
	}
	if b.Contains(MustParse("203.0.114.0")) {
		t.Error("Contains(203.0.114.0) = true")
	}
	if got := b.Nth(77); got != MustParse("203.0.113.77") {
		t.Errorf("Nth(77) = %s", got)
	}
}

func TestBlockNormalizesBase(t *testing.T) {
	b := MustParseBlock("203.0.113.99/24")
	if b.Base != MustParse("203.0.113.0") {
		t.Errorf("base not masked: %s", b.Base)
	}
}

func TestBlockInvalid(t *testing.T) {
	for _, s := range []string{"203.0.113.0", "203.0.113.0/33", "203.0.113.0/-1", "x/24", "203.0.113.0/a"} {
		if _, err := ParseBlock(s); err == nil {
			t.Errorf("ParseBlock(%q) succeeded, want error", s)
		}
	}
}

func TestBlockOverlaps(t *testing.T) {
	a := MustParseBlock("10.0.0.0/8")
	b := MustParseBlock("10.20.0.0/16")
	c := MustParseBlock("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested blocks should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint blocks should not overlap")
	}
}

func TestBlockNthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range did not panic")
		}
	}()
	MustParseBlock("192.0.2.0/30").Nth(4)
}

func TestStringRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Addr(rng.Uint32())
		got, err := Parse(a.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("round trip %#x -> %q -> %#x", a, a.String(), got)
		}
	}
}
