// Package ipaddr provides IPv4 address utilities used by the HTTP packet
// destination distance (§IV-B of the paper) and by the synthetic traffic
// generator's address-block allocator.
//
// The paper defines the destination IP term of the packet distance through
// lmatch, "a function [that] returns a number of common upper bits in two IP
// address[es]". This package implements that primitive along with parsing,
// formatting, and CIDR block arithmetic on a compact uint32 representation.
package ipaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order. The zero value is 0.0.0.0.
type Addr uint32

// Parse parses a dotted-quad IPv4 address such as "192.0.2.7".
// It rejects anything that is not exactly four decimal octets.
func Parse(s string) (Addr, error) {
	var a Addr
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("ipaddr: invalid address %q: expected 4 octets", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		if part == "" || len(part) > 3 {
			return 0, fmt.Errorf("ipaddr: invalid address %q: bad octet %q", s, part)
		}
		if len(part) > 1 && part[0] == '0' {
			return 0, fmt.Errorf("ipaddr: invalid address %q: leading zero in octet %q", s, part)
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("ipaddr: invalid address %q: bad octet %q", s, part)
		}
		a = a<<8 | Addr(n)
	}
	return a, nil
}

// MustParse is like Parse but panics on error. It is intended for
// package-level tables of known-good literals.
func MustParse(s string) Addr {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String returns the dotted-quad form of the address.
func (a Addr) String() string {
	var b strings.Builder
	b.Grow(15)
	for shift := 24; shift >= 0; shift -= 8 {
		if shift != 24 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.Itoa(int(a >> uint(shift) & 0xff)))
	}
	return b.String()
}

// MarshalText implements encoding.TextMarshaler using dotted-quad notation,
// so Addr fields serialize naturally in JSON captures.
func (a Addr) MarshalText() ([]byte, error) {
	return []byte(a.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *Addr) UnmarshalText(text []byte) error {
	v, err := Parse(string(text))
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// Octets returns the four octets of the address, most significant first.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// FromOctets assembles an address from four octets, most significant first.
func FromOctets(o0, o1, o2, o3 byte) Addr {
	return Addr(o0)<<24 | Addr(o1)<<16 | Addr(o2)<<8 | Addr(o3)
}

// CommonPrefixLen returns the number of leading bits shared by a and b,
// in [0, 32]. This is the paper's lmatch primitive: identical addresses
// return 32; addresses differing in the top bit return 0.
func CommonPrefixLen(a, b Addr) int {
	x := uint32(a ^ b)
	if x == 0 {
		return 32
	}
	n := 0
	for x&0x80000000 == 0 {
		n++
		x <<= 1
	}
	return n
}

// Mask returns the network mask with the given prefix length.
// Mask(0) is 0.0.0.0 and Mask(32) is 255.255.255.255.
func Mask(prefixLen int) Addr {
	if prefixLen <= 0 {
		return 0
	}
	if prefixLen >= 32 {
		return 0xffffffff
	}
	return Addr(^uint32(0) << uint(32-prefixLen))
}

// Block is a CIDR block: a base address and a prefix length.
type Block struct {
	Base Addr
	Bits int // prefix length in [0, 32]
}

// ParseBlock parses CIDR notation such as "203.0.113.0/24".
func ParseBlock(s string) (Block, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Block{}, fmt.Errorf("ipaddr: invalid CIDR %q: missing '/'", s)
	}
	base, err := Parse(s[:slash])
	if err != nil {
		return Block{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Block{}, fmt.Errorf("ipaddr: invalid CIDR %q: bad prefix length", s)
	}
	return Block{Base: base & Mask(bits), Bits: bits}, nil
}

// MustParseBlock is like ParseBlock but panics on error.
func MustParseBlock(s string) Block {
	b, err := ParseBlock(s)
	if err != nil {
		panic(err)
	}
	return b
}

// String returns the block in CIDR notation.
func (b Block) String() string {
	return b.Base.String() + "/" + strconv.Itoa(b.Bits)
}

// Contains reports whether the address lies within the block.
func (b Block) Contains(a Addr) bool {
	return a&Mask(b.Bits) == b.Base&Mask(b.Bits)
}

// Size returns the number of addresses in the block.
func (b Block) Size() uint64 {
	return uint64(1) << uint(32-b.Bits)
}

// Nth returns the i-th address of the block (0 is the base address).
// It panics if i is out of range.
func (b Block) Nth(i uint64) Addr {
	if i >= b.Size() {
		panic(fmt.Sprintf("ipaddr: index %d out of range for %s", i, b))
	}
	return b.Base&Mask(b.Bits) | Addr(i)
}

// Overlaps reports whether the two blocks share any address.
func (b Block) Overlaps(o Block) bool {
	return b.Contains(o.Base&Mask(o.Bits)) || o.Contains(b.Base&Mask(b.Bits))
}
