package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Title", "host", "packets")
	tbl.AddRow("doubleclick.net", 5786)
	tbl.AddRow("x.jp", 12)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "host") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("separator = %q", lines[2])
	}
	// Columns align: "packets" column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "packets")
	if idx < 0 {
		t.Fatal("packets header missing")
	}
	if got := strings.TrimSpace(lines[3][idx:]); got != "5786" {
		t.Errorf("row 1 value column = %q", got)
	}
	if got := strings.TrimSpace(lines[4][idx:]); got != "12" {
		t.Errorf("row 2 value column = %q", got)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tbl := NewTable("", "rate")
	tbl.AddRow(3.14159)
	if !strings.Contains(tbl.String(), "3.14") {
		t.Errorf("float not formatted: %q", tbl.String())
	}
	if strings.Contains(tbl.String(), "3.14159") {
		t.Error("float not truncated to two decimals")
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("x")
	if strings.HasPrefix(tbl.String(), "\n") {
		t.Error("empty title produced leading newline")
	}
}

func TestSeries(t *testing.T) {
	out := Series("detection", []int{100, 200},
		map[string][]float64{"tp": {50, 100}},
		[]string{"tp"})
	if !strings.Contains(out, "detection") || !strings.Contains(out, "tp") {
		t.Errorf("series missing labels:\n%s", out)
	}
	if !strings.Contains(out, "N=100") || !strings.Contains(out, "N=200") {
		t.Errorf("series missing x values:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	var bar50, bar100 int
	for _, l := range lines {
		if strings.Contains(l, "N=100") {
			bar50 = strings.Count(l, "#")
		}
		if strings.Contains(l, "N=200") {
			bar100 = strings.Count(l, "#")
		}
	}
	if bar100 != 2*bar50 {
		t.Errorf("bars not proportional: %d vs %d", bar50, bar100)
	}
}

func TestSeriesClampsOutOfRange(t *testing.T) {
	out := Series("t", []int{1, 2}, map[string][]float64{"s": {-5, 150}}, []string{"s"})
	lines := strings.Split(out, "\n")
	for _, l := range lines {
		if n := strings.Count(l, "#"); n > 50 {
			t.Errorf("bar exceeds width: %d", n)
		}
	}
}

func TestSeriesShortSeries(t *testing.T) {
	// Fewer y values than x values must not panic.
	out := Series("t", []int{1, 2, 3}, map[string][]float64{"s": {10}}, []string{"s"})
	if !strings.Contains(out, "N=1") {
		t.Error("first point missing")
	}
	if strings.Contains(out, "N=2 ") && strings.Count(out, "N=") > 1 {
		t.Error("points beyond series length rendered")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.941); got != "94.10%" {
		t.Errorf("Percent = %q", got)
	}
	if got := Percent(0); got != "0.00%" {
		t.Errorf("Percent(0) = %q", got)
	}
}
