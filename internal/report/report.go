// Package report renders evaluation results as fixed-width text tables and
// simple ASCII series, matching the artifacts the paper prints (Tables I-III,
// Figures 2 and 4).
package report

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends one row; values are formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series renders (x, y-per-line) points as an ASCII chart with a left axis,
// used for the Figure 4 sweep. Values are percentages in [0, 100].
func Series(title string, xs []int, series map[string][]float64, order []string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	const barWidth = 50
	for _, name := range order {
		ys := series[name]
		fmt.Fprintf(&b, "%s\n", name)
		for i, x := range xs {
			if i >= len(ys) {
				break
			}
			n := int(ys[i] / 100 * barWidth)
			if n < 0 {
				n = 0
			}
			if n > barWidth {
				n = barWidth
			}
			fmt.Fprintf(&b, "  N=%-5d %6.2f%% |%s\n", x, ys[i], strings.Repeat("#", n))
		}
	}
	return b.String()
}

// Percent formats a fraction as a percentage string.
func Percent(f float64) string {
	return fmt.Sprintf("%.2f%%", f*100)
}
