// Package collector implements the traffic-collection entry point of the
// paper's Figure 3(a): "a separate server collects application traffic,
// clustering the data and generating signatures." The Recorder observes
// HTTP requests (as raw wire bytes or model packets), stamps capture
// metadata, and accumulates them into a capture.Set ready for the
// clustering pipeline. It is safe for concurrent use so a fleet of devices
// can upload simultaneously.
package collector

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"leaksig/internal/capture"
	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
)

// Recorder accumulates observed packets.
type Recorder struct {
	mu     sync.Mutex
	nextID int64
	set    *capture.Set
	now    func() int64
}

// New returns an empty recorder. now may be nil for wall-clock time; tests
// inject a deterministic clock.
func New(now func() int64) *Recorder {
	if now == nil {
		now = func() int64 { return time.Now().Unix() }
	}
	return &Recorder{set: capture.New(nil), now: now, nextID: 1}
}

// Record stores a copy of the packet with a fresh capture ID and timestamp
// (existing values are overwritten — the collector owns capture identity).
func (r *Recorder) Record(app string, p *httpmodel.Packet) *httpmodel.Packet {
	cp := p.Clone()
	if app != "" {
		cp.App = app
	}
	r.mu.Lock()
	cp.ID = r.nextID
	r.nextID++
	cp.Time = r.now()
	r.set.Append(cp)
	r.mu.Unlock()
	return cp
}

// RecordWire parses one raw HTTP request and records it.
func (r *Recorder) RecordWire(app string, raw []byte, dstIP ipaddr.Addr, dstPort uint16) (*httpmodel.Packet, error) {
	p, err := httpmodel.ParseWireBytes(raw, dstIP, dstPort)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	return r.Record(app, p), nil
}

// Len returns the number of recorded packets.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.set.Len()
}

// Snapshot returns a copy of the capture set collected so far. The packets
// are shared (the recorder never mutates them after recording); the slice
// is fresh.
func (r *Recorder) Snapshot() *capture.Set {
	r.mu.Lock()
	defer r.mu.Unlock()
	ps := make([]*httpmodel.Packet, r.set.Len())
	copy(ps, r.set.Packets)
	return capture.New(ps)
}

// UploadHandler returns the HTTP ingestion API devices POST raw requests
// to:
//
//	POST /upload?app=<package>&ip=<dst-ip>&port=<dst-port>
//
// with the raw HTTP request as the body. Responses: 204 on success, 400 on
// malformed input. A GET /stats endpoint reports the collected count.
func (r *Recorder) UploadHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /upload", func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		app := q.Get("app")
		ip, err := ipaddr.Parse(q.Get("ip"))
		if err != nil {
			http.Error(w, "bad ip: "+err.Error(), http.StatusBadRequest)
			return
		}
		port64, err := strconv.ParseUint(q.Get("port"), 10, 16)
		if err != nil {
			http.Error(w, "bad port", http.StatusBadRequest)
			return
		}
		raw, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
		if err != nil {
			http.Error(w, "reading body", http.StatusBadRequest)
			return
		}
		if _, err := r.RecordWire(app, raw, ip, uint16(port64)); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, req *http.Request) {
		fmt.Fprintf(w, "%d", r.Len())
	})
	return mux
}
