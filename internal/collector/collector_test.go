package collector

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
)

func fixedClock() func() int64 {
	t := int64(1325376000)
	return func() int64 { t++; return t }
}

func TestRecordAssignsIdentity(t *testing.T) {
	r := New(fixedClock())
	p := httpmodel.Get("admob.com", "/mads/gma?udid=x").
		Dest(ipaddr.MustParse("203.0.113.1"), 80).Build()
	got := r.Record("com.example", p)
	if got.ID != 1 || got.App != "com.example" || got.Time != 1325376001 {
		t.Errorf("recorded metadata = id %d app %q time %d", got.ID, got.App, got.Time)
	}
	got2 := r.Record("com.example", p)
	if got2.ID != 2 {
		t.Errorf("second ID = %d", got2.ID)
	}
	// The original packet is untouched.
	if p.ID != 0 || p.App != "" {
		t.Error("Record mutated the input packet")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestRecordWire(t *testing.T) {
	r := New(fixedClock())
	raw := []byte("GET /x?q=1 HTTP/1.1\r\nHost: api.example.jp\r\n\r\n")
	p, err := r.RecordWire("com.app", raw, ipaddr.MustParse("198.51.100.1"), 8080)
	if err != nil {
		t.Fatal(err)
	}
	if p.Host != "api.example.jp" || p.DstPort != 8080 {
		t.Errorf("parsed packet = %+v", p)
	}
	if _, err := r.RecordWire("com.app", []byte("garbage"), 1, 80); err == nil {
		t.Error("garbage wire accepted")
	}
	if r.Len() != 1 {
		t.Errorf("Len after failure = %d", r.Len())
	}
}

func TestSnapshotIsolated(t *testing.T) {
	r := New(fixedClock())
	p := httpmodel.Get("a.example", "/1").Dest(1, 80).Build()
	r.Record("app", p)
	snap := r.Snapshot()
	r.Record("app", p)
	if snap.Len() != 1 {
		t.Errorf("snapshot grew with recorder: %d", snap.Len())
	}
	if r.Len() != 2 {
		t.Errorf("recorder len = %d", r.Len())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New(nil)
	var wg sync.WaitGroup
	const goroutines, each = 8, 50
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := httpmodel.Get("x.example", "/p").Dest(1, 80).Build()
			for i := 0; i < each; i++ {
				r.Record(fmt.Sprintf("app%d", g), p)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != goroutines*each {
		t.Fatalf("Len = %d", r.Len())
	}
	// IDs must be unique.
	seen := make(map[int64]bool)
	for _, p := range r.Snapshot().Packets {
		if seen[p.ID] {
			t.Fatalf("duplicate ID %d", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestUploadHandler(t *testing.T) {
	r := New(fixedClock())
	ts := httptest.NewServer(r.UploadHandler())
	defer ts.Close()

	raw := "GET /ad?imei=353918051234563 HTTP/1.1\r\nHost: ad-maker.info\r\n\r\n"
	url := ts.URL + "/upload?app=com.example.game&ip=203.0.113.9&port=80"
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader([]byte(raw)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("upload status = %s", resp.Status)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	got := r.Snapshot().Packets[0]
	if got.App != "com.example.game" || got.Host != "ad-maker.info" {
		t.Errorf("uploaded packet = %+v", got)
	}

	// Stats endpoint.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if string(body) != "1" {
		t.Errorf("stats = %q", body)
	}
}

func TestUploadHandlerRejectsBadInput(t *testing.T) {
	r := New(nil)
	ts := httptest.NewServer(r.UploadHandler())
	defer ts.Close()
	cases := []string{
		"/upload?app=a&ip=notanip&port=80",
		"/upload?app=a&ip=1.2.3.4&port=notaport",
		"/upload?app=a&ip=1.2.3.4&port=99999",
	}
	for _, path := range cases {
		resp, err := http.Post(ts.URL+path, "application/octet-stream",
			bytes.NewReader([]byte("GET / HTTP/1.1\r\nHost: h\r\n\r\n")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %s, want 400", path, resp.Status)
		}
	}
	// Malformed wire body.
	resp, _ := http.Post(ts.URL+"/upload?app=a&ip=1.2.3.4&port=80",
		"application/octet-stream", bytes.NewReader([]byte("garbage")))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body status = %s", resp.Status)
	}
	if r.Len() != 0 {
		t.Errorf("rejected uploads were recorded: %d", r.Len())
	}
}
