// Package distance implements the paper's HTTP packet distance (§IV-B/C):
//
//	dpkt(px, py)    = ddst(px, py) + dheader(px, py)
//	ddst(px, py)    = dip + dport + dhost
//	dheader(px, py) = ncd(request-line) + ncd(cookie) + ncd(body)
//
// The destination terms as printed are internally inconsistent: dip =
// lmatch/32 and dport = match(port) score *identical* destinations highest,
// i.e. they are similarities, while dhost and the NCD terms are distances
// (0 for identical inputs). Summing them as printed pushes same-destination
// packets apart. This package offers both conventions:
//
//   - ModeLiteral follows the paper's formulas verbatim.
//   - ModeNormalized (default) flips the two similarity terms
//     (dip' = 1 − lmatch/32, dport' = 1 − match) so every component is a
//     distance in [0, 1] and packets to the same server cluster together —
//     the behaviour the paper's prose describes ("results sent to the same
//     server to be clustered together", §IV-A).
//
// See DESIGN.md §3 for the rationale; an ablation benchmark compares both.
package distance

import (
	"runtime"
	"sync"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
	"leaksig/internal/ncd"
	"leaksig/internal/strdist"
)

// Mode selects the destination-term convention.
type Mode int

// Modes. See the package comment.
const (
	ModeNormalized Mode = iota
	ModeLiteral
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeNormalized:
		return "normalized"
	case ModeLiteral:
		return "literal"
	default:
		return "unknown"
	}
}

// Config parameterizes the metric. The zero value gives the repository
// defaults: normalized mode, DEFLATE-backed cached NCD, unit weights.
type Config struct {
	Mode Mode

	// Compressor used for the NCD content terms. Nil selects a fresh
	// memoizing DEFLATE compressor.
	Compressor ncd.Compressor

	// DestinationWeight and ContentWeight scale ddst and dheader in dpkt.
	// Zero values mean 1.0. Setting DestinationWeight to -1 disables the
	// destination term entirely (content-only ablation).
	DestinationWeight float64
	ContentWeight     float64

	// OrgResolver, when non-nil, implements the paper's §VI WHOIS
	// verification: for a pair of destination addresses it reports whether
	// they belong to one organization (and whether that is known at all).
	// When the resolver knows the answer, the IP term uses organizational
	// identity instead of the raw prefix length — close addresses owned by
	// different organizations stop looking related.
	OrgResolver func(a, b ipaddr.Addr) (same, known bool)
}

// Metric computes packet distances under one configuration. It is safe for
// concurrent use.
type Metric struct {
	mode    Mode
	comp    ncd.Compressor
	wDst    float64
	wHeader float64
	orgRes  func(a, b ipaddr.Addr) (same, known bool)
}

// New builds a Metric from cfg.
func New(cfg Config) *Metric {
	comp := cfg.Compressor
	if comp == nil {
		comp = ncd.NewCache(ncd.Default())
	}
	wd := cfg.DestinationWeight
	switch {
	case wd == 0:
		wd = 1
	case wd < 0:
		wd = 0
	}
	wh := cfg.ContentWeight
	if wh == 0 {
		wh = 1
	}
	return &Metric{mode: cfg.Mode, comp: comp, wDst: wd, wHeader: wh, orgRes: cfg.OrgResolver}
}

// Default returns the metric with repository-default configuration.
func Default() *Metric { return New(Config{}) }

// IPTerm returns dip for the two destination addresses. With an
// OrgResolver configured and a known answer, organizational identity
// replaces the prefix similarity (the §VI WHOIS verification).
func (m *Metric) IPTerm(a, b ipaddr.Addr) float64 {
	sim := float64(ipaddr.CommonPrefixLen(a, b)) / 32
	if m.orgRes != nil {
		if same, known := m.orgRes(a, b); known {
			if same {
				sim = 1
			} else {
				sim = 0
			}
		}
	}
	if m.mode == ModeLiteral {
		return sim
	}
	return 1 - sim
}

// PortTerm returns dport for the two destination ports.
func (m *Metric) PortTerm(a, b uint16) float64 {
	match := 0.0
	if a == b {
		match = 1.0
	}
	if m.mode == ModeLiteral {
		return match
	}
	return 1 - match
}

// HostTerm returns dhost: edit distance over the FQDNs normalized by the
// longer length. Both modes use the paper's formula (it is already a
// distance).
func (m *Metric) HostTerm(a, b string) float64 {
	return strdist.Normalized(a, b)
}

// Destination returns ddst(px, py) = dip + dport + dhost.
func (m *Metric) Destination(px, py *httpmodel.Packet) float64 {
	return m.IPTerm(px.DstIP, py.DstIP) +
		m.PortTerm(px.DstPort, py.DstPort) +
		m.HostTerm(px.Host, py.Host)
}

// Content returns dheader(px, py): the sum of NCD over request-line,
// cookie, and message-body (§IV-C).
func (m *Metric) Content(px, py *httpmodel.Packet) float64 {
	fx := px.ContentFields()
	fy := py.ContentFields()
	d := 0.0
	for i := 0; i < 3; i++ {
		d += ncd.Distance(m.comp, fx[i], fy[i])
	}
	return d
}

// Packet returns the full dpkt(px, py) = w_dst·ddst + w_hdr·dheader.
func (m *Metric) Packet(px, py *httpmodel.Packet) float64 {
	d := 0.0
	if m.wDst > 0 {
		d += m.wDst * m.Destination(px, py)
	}
	if m.wHeader > 0 {
		d += m.wHeader * m.Content(px, py)
	}
	return d
}

// MaxValue returns an upper bound of dpkt under this configuration, used to
// normalize dendrogram cut thresholds. Each of the six component terms lies
// in [0, 1] (NCD can marginally exceed 1; the bound is adequate for
// thresholding).
func (m *Metric) MaxValue() float64 {
	return 3*m.wDst + 3*m.wHeader
}

// Matrix is a symmetric pairwise distance matrix over n packets, stored as
// the condensed upper triangle.
type Matrix struct {
	n    int
	vals []float64 // len n*(n-1)/2
}

// NewMatrix computes all pairwise distances among packets using the metric,
// fanning work out over min(GOMAXPROCS, pairs) goroutines.
func NewMatrix(m *Metric, packets []*httpmodel.Packet) *Matrix {
	n := len(packets)
	mx := &Matrix{n: n, vals: make([]float64, n*(n-1)/2)}
	if n < 2 {
		return mx
	}
	// Pre-warm the NCD cache sequentially-by-row in parallel chunks: each
	// worker takes whole rows so cache contention stays low.
	workers := runtime.GOMAXPROCS(0)
	if workers > n-1 {
		workers = n - 1
	}
	var wg sync.WaitGroup
	rows := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range rows {
				for j := i + 1; j < n; j++ {
					mx.vals[condensedIndex(n, i, j)] = m.Packet(packets[i], packets[j])
				}
			}
		}()
	}
	for i := 0; i < n-1; i++ {
		rows <- i
	}
	close(rows)
	wg.Wait()
	return mx
}

// condensedIndex maps (i, j) with i < j to the condensed triangle offset.
func condensedIndex(n, i, j int) int {
	// Offset of row i is sum_{k<i} (n-1-k) = i*(n-1) - i*(i-1)/2.
	return i*(n-1) - i*(i-1)/2 + (j - i - 1)
}

// N returns the matrix dimension.
func (mx *Matrix) N() int { return mx.n }

// At returns the distance between packets i and j. At(i, i) is 0.
func (mx *Matrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	if i > j {
		i, j = j, i
	}
	return mx.vals[condensedIndex(mx.n, i, j)]
}

// Dense expands the matrix into a full n×n slice-of-slices. Used by the
// clustering algorithm, which mutates its own working copy.
func (mx *Matrix) Dense() [][]float64 {
	out := make([][]float64, mx.n)
	flat := make([]float64, mx.n*mx.n)
	for i := range out {
		out[i] = flat[i*mx.n : (i+1)*mx.n]
		for j := range out[i] {
			out[i][j] = mx.At(i, j)
		}
	}
	return out
}
