package distance

import (
	"math"
	"math/rand"
	"testing"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
)

func pkt(host, path string, ip string, port uint16) *httpmodel.Packet {
	return httpmodel.Get(host, path).Dest(ipaddr.MustParse(ip), port).Build()
}

func TestIPTermModes(t *testing.T) {
	norm := New(Config{Mode: ModeNormalized})
	lit := New(Config{Mode: ModeLiteral})
	a := ipaddr.MustParse("203.0.113.10")
	same := a
	if got := norm.IPTerm(a, same); got != 0 {
		t.Errorf("normalized identical IP term = %v, want 0", got)
	}
	if got := lit.IPTerm(a, same); got != 1 {
		t.Errorf("literal identical IP term = %v, want 1", got)
	}
	far := ipaddr.MustParse("10.0.0.1") // differs in top bit region
	nf := norm.IPTerm(a, far)
	lf := lit.IPTerm(a, far)
	if math.Abs(nf+lf-1) > 1e-12 {
		t.Errorf("modes should be complementary: %v + %v != 1", nf, lf)
	}
	if nf <= norm.IPTerm(a, ipaddr.MustParse("203.0.113.99")) {
		t.Error("same /24 should be closer than cross-class in normalized mode")
	}
}

func TestPortTermModes(t *testing.T) {
	norm := New(Config{Mode: ModeNormalized})
	lit := New(Config{Mode: ModeLiteral})
	if norm.PortTerm(80, 80) != 0 || norm.PortTerm(80, 443) != 1 {
		t.Error("normalized port term wrong")
	}
	if lit.PortTerm(80, 80) != 1 || lit.PortTerm(80, 443) != 0 {
		t.Error("literal port term wrong")
	}
}

func TestHostTermSharedByModes(t *testing.T) {
	norm := New(Config{Mode: ModeNormalized})
	lit := New(Config{Mode: ModeLiteral})
	a, b := "admob.com", "amob.com"
	if norm.HostTerm(a, b) != lit.HostTerm(a, b) {
		t.Error("host term should not depend on mode")
	}
	if norm.HostTerm(a, a) != 0 {
		t.Error("identical hosts should have zero host term")
	}
	if got := norm.HostTerm(a, b); math.Abs(got-1.0/9.0) > 1e-12 {
		t.Errorf("HostTerm = %v, want 1/9", got)
	}
}

func TestDestinationIdenticalNormalized(t *testing.T) {
	m := Default()
	p := pkt("ads.example.jp", "/a", "203.0.113.1", 80)
	q := pkt("ads.example.jp", "/b", "203.0.113.1", 80)
	if got := m.Destination(p, q); got != 0 {
		t.Errorf("identical destination distance = %v, want 0", got)
	}
}

func TestDestinationRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Default()
	for i := 0; i < 200; i++ {
		p := pkt("a.example", "/", ipaddr.Addr(rng.Uint32()).String(), uint16(rng.Intn(65536)))
		q := pkt("bb.example.org", "/", ipaddr.Addr(rng.Uint32()).String(), uint16(rng.Intn(65536)))
		d := m.Destination(p, q)
		if d < 0 || d > 3 {
			t.Fatalf("destination distance out of range: %v", d)
		}
	}
}

func TestContentDistanceOrdering(t *testing.T) {
	m := Default()
	base := pkt("ad.example", "/fetch?zone=12&udid=f3a9c1d200b14e67&fmt=json", "203.0.113.1", 80)
	near := pkt("ad.example", "/fetch?zone=99&udid=f3a9c1d200b14e67&fmt=json", "203.0.113.1", 80)
	far := pkt("ad.example", "/completely/other/endpoint/with/long/path/segments.js", "203.0.113.1", 80)
	if m.Content(base, near) >= m.Content(base, far) {
		t.Errorf("content distance ordering: near %v >= far %v",
			m.Content(base, near), m.Content(base, far))
	}
}

func TestPacketCombinesTerms(t *testing.T) {
	m := Default()
	p := pkt("a.example", "/x?q=1", "203.0.113.1", 80)
	q := pkt("b.example", "/y?q=2", "198.51.100.7", 443)
	want := m.Destination(p, q) + m.Content(p, q)
	if got := m.Packet(p, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("Packet = %v, want %v", got, want)
	}
}

func TestWeights(t *testing.T) {
	p := pkt("a.example", "/x", "203.0.113.1", 80)
	q := pkt("b.example", "/y", "198.51.100.7", 443)
	contentOnly := New(Config{DestinationWeight: -1})
	if got, want := contentOnly.Packet(p, q), Default().Content(p, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("content-only = %v, want %v", got, want)
	}
	doubled := New(Config{DestinationWeight: 2, ContentWeight: 1})
	base := Default()
	want := 2*base.Destination(p, q) + base.Content(p, q)
	if got := doubled.Packet(p, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("weighted = %v, want %v", got, want)
	}
}

func TestMaxValue(t *testing.T) {
	if got := Default().MaxValue(); got != 6 {
		t.Errorf("default MaxValue = %v, want 6", got)
	}
	if got := New(Config{DestinationWeight: -1}).MaxValue(); got != 3 {
		t.Errorf("content-only MaxValue = %v, want 3", got)
	}
}

func TestSelfDistanceNearZero(t *testing.T) {
	m := Default()
	p := pkt("ad.example", "/fetch?zone=12&udid=f3a9c1d200b14e67", "203.0.113.1", 80)
	d := m.Packet(p, p)
	// Destination terms are exactly 0; NCD of identical short strings is
	// small but non-zero for real compressors.
	if d < 0 || d > 1.0 {
		t.Errorf("self distance = %v", d)
	}
}

func TestSameModuleCloserThanCrossModule(t *testing.T) {
	// The property §IV-A relies on: two packets from one ad module (same
	// destination, same URL template) must be closer than packets from
	// different modules.
	m := Default()
	ad1a := pkt("ad-maker.info", "/ad/v2?zone=12&imei=353918051234563", "203.0.113.10", 80)
	ad1b := pkt("ad-maker.info", "/ad/v2?zone=98&imei=353918051234563", "203.0.113.10", 80)
	ad2 := pkt("admob.com", "/mads/gma?u=8a6b1c9f33d200e7&fmt=html", "198.51.100.200", 80)
	within := m.Packet(ad1a, ad1b)
	across := m.Packet(ad1a, ad2)
	if within >= across {
		t.Errorf("within-module %v >= across-module %v", within, across)
	}
}

func TestMatrix(t *testing.T) {
	ps := []*httpmodel.Packet{
		pkt("a.example", "/1?x=1", "203.0.113.1", 80),
		pkt("a.example", "/1?x=2", "203.0.113.1", 80),
		pkt("b.example", "/zzz", "198.51.100.9", 443),
		pkt("c.example", "/qqq?k=v", "192.0.2.55", 8080),
	}
	m := Default()
	mx := NewMatrix(m, ps)
	if mx.N() != 4 {
		t.Fatalf("N = %d", mx.N())
	}
	for i := 0; i < 4; i++ {
		if mx.At(i, i) != 0 {
			t.Errorf("At(%d,%d) = %v", i, i, mx.At(i, i))
		}
		for j := 0; j < 4; j++ {
			if mx.At(i, j) != mx.At(j, i) {
				t.Errorf("asymmetric At(%d,%d)", i, j)
			}
			if i != j {
				want := m.Packet(ps[i], ps[j])
				if math.Abs(mx.At(i, j)-want) > 1e-9 {
					t.Errorf("At(%d,%d) = %v, want %v", i, j, mx.At(i, j), want)
				}
			}
		}
	}
}

func TestMatrixDense(t *testing.T) {
	ps := []*httpmodel.Packet{
		pkt("a.example", "/1", "203.0.113.1", 80),
		pkt("b.example", "/2", "203.0.113.2", 80),
		pkt("c.example", "/3", "203.0.113.3", 80),
	}
	mx := NewMatrix(Default(), ps)
	d := mx.Dense()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if d[i][j] != mx.At(i, j) {
				t.Errorf("Dense[%d][%d] = %v, want %v", i, j, d[i][j], mx.At(i, j))
			}
		}
	}
}

func TestMatrixTrivialSizes(t *testing.T) {
	if mx := NewMatrix(Default(), nil); mx.N() != 0 {
		t.Error("empty matrix")
	}
	one := NewMatrix(Default(), []*httpmodel.Packet{pkt("a.example", "/", "203.0.113.1", 80)})
	if one.N() != 1 || one.At(0, 0) != 0 {
		t.Error("singleton matrix")
	}
}

func TestCondensedIndexCoversAllPairs(t *testing.T) {
	n := 17
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			k := condensedIndex(n, i, j)
			if k < 0 || k >= n*(n-1)/2 {
				t.Fatalf("index out of range: (%d,%d) -> %d", i, j, k)
			}
			if seen[k] {
				t.Fatalf("index collision at (%d,%d) -> %d", i, j, k)
			}
			seen[k] = true
		}
	}
	if len(seen) != n*(n-1)/2 {
		t.Fatalf("covered %d of %d slots", len(seen), n*(n-1)/2)
	}
}

func TestModeString(t *testing.T) {
	if ModeNormalized.String() != "normalized" || ModeLiteral.String() != "literal" {
		t.Error("mode names")
	}
	if Mode(9).String() != "unknown" {
		t.Error("unknown mode name")
	}
}

func TestIPTermWithOrgResolver(t *testing.T) {
	// Two adjacent /16s owned by different organizations: raw prefix says
	// "close", the resolver corrects it (paper §VI).
	a := ipaddr.MustParse("64.16.0.1")
	b := ipaddr.MustParse("64.17.0.1") // 15 shared bits
	sameOrg := func(x, y ipaddr.Addr) (bool, bool) { return false, true }
	plain := New(Config{})
	verified := New(Config{OrgResolver: sameOrg})
	if plain.IPTerm(a, b) >= 0.9 {
		t.Fatalf("raw prefix term should be small-ish: %v", plain.IPTerm(a, b))
	}
	if got := verified.IPTerm(a, b); got != 1 {
		t.Errorf("refuted pair term = %v, want 1 (maximally far)", got)
	}
	// Confirmed same-org pair becomes maximally close.
	confirm := New(Config{OrgResolver: func(x, y ipaddr.Addr) (bool, bool) { return true, true }})
	if got := confirm.IPTerm(a, b); got != 0 {
		t.Errorf("confirmed pair term = %v, want 0", got)
	}
	// Unknown allocations fall back to the prefix term.
	unknown := New(Config{OrgResolver: func(x, y ipaddr.Addr) (bool, bool) { return false, false }})
	if got := unknown.IPTerm(a, b); got != plain.IPTerm(a, b) {
		t.Errorf("unknown pair term = %v, want prefix fallback %v", got, plain.IPTerm(a, b))
	}
}

func TestIPTermOrgResolverLiteralMode(t *testing.T) {
	a := ipaddr.MustParse("64.16.0.1")
	b := ipaddr.MustParse("64.17.0.1")
	lit := New(Config{Mode: ModeLiteral, OrgResolver: func(x, y ipaddr.Addr) (bool, bool) { return true, true }})
	if got := lit.IPTerm(a, b); got != 1 {
		t.Errorf("literal confirmed term = %v, want 1 (similarity)", got)
	}
}
