// Package cluster implements agglomerative hierarchical clustering over a
// precomputed distance matrix (§IV-D of the paper).
//
// The paper clusters with the group-average criterion: the distance between
// clusters Cx and Cy is the mean pairwise packet distance
//
//	dgroup(Cx, Cy) = (1/|Cx||Cy|) Σ Σ dpkt(px, py)
//
// and repeatedly merges the closest pair until one cluster remains,
// producing a dendrogram. This package implements that procedure with the
// nearest-neighbor-chain algorithm and Lance–Williams distance updates,
// which yields the exact group-average hierarchy in O(n²) time. Single and
// complete linkage are provided for the ablation benchmarks.
package cluster

import (
	"fmt"
	"sort"
)

// Linkage selects the cluster-distance criterion.
type Linkage int

// Supported linkage criteria. GroupAverage is the paper's choice (§IV-D).
const (
	GroupAverage Linkage = iota
	Single
	Complete
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case GroupAverage:
		return "group-average"
	case Single:
		return "single"
	case Complete:
		return "complete"
	default:
		return "unknown"
	}
}

// Merge records one agglomeration step. Node identifiers follow scipy
// convention: leaves are 0..n-1; the merge recorded at Merges[k] creates
// internal node n+k.
type Merge struct {
	A, B     int     // children (leaf or internal node ids), A < B
	Distance float64 // linkage distance at which the merge happened
	Size     int     // number of leaves under the new node
}

// Dendrogram is the full merge history of n leaves: exactly n-1 merges.
type Dendrogram struct {
	NumLeaves int
	Merges    []Merge
}

// DistanceMatrix is the read-only view the agglomerator needs.
type DistanceMatrix interface {
	N() int
	At(i, j int) float64
}

// Agglomerate builds the dendrogram of the n items of dm under the given
// linkage using the nearest-neighbor-chain algorithm. For n == 0 or 1 the
// dendrogram has no merges.
func Agglomerate(dm DistanceMatrix, linkage Linkage) *Dendrogram {
	n := dm.N()
	d := &Dendrogram{NumLeaves: n}
	if n < 2 {
		return d
	}
	// Working distance matrix, mutated by Lance–Williams updates.
	w := make([][]float64, n)
	flat := make([]float64, n*n)
	for i := 0; i < n; i++ {
		w[i] = flat[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			w[i][j] = dm.At(i, j)
		}
	}
	active := make([]bool, n) // slot is a live cluster
	size := make([]int, n)    // leaves under slot
	node := make([]int, n)    // dendrogram node id of slot
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		node[i] = i
	}
	nextNode := n
	remaining := n
	chain := make([]int, 0, n)
	for remaining > 1 {
		if len(chain) == 0 {
			for i := 0; i < n; i++ {
				if active[i] {
					chain = append(chain, i)
					break
				}
			}
		}
		for {
			tip := chain[len(chain)-1]
			// Find the nearest active neighbor of tip; prefer the previous
			// chain element on ties so reciprocity is detected.
			prev := -1
			if len(chain) >= 2 {
				prev = chain[len(chain)-2]
			}
			nn, nnDist := -1, 0.0
			for j := 0; j < n; j++ {
				if j == tip || !active[j] {
					continue
				}
				dj := w[tip][j]
				if nn == -1 || dj < nnDist || (dj == nnDist && j == prev) {
					nn, nnDist = j, dj
				}
			}
			if nn == prev {
				// Reciprocal nearest neighbors: merge tip and prev.
				chain = chain[:len(chain)-2]
				a, b := prev, tip
				mergeInto(w, active, size, a, b, nnDist, linkage)
				na, nb := node[a], node[b]
				if na > nb {
					na, nb = nb, na
				}
				d.Merges = append(d.Merges, Merge{
					A:        na,
					B:        nb,
					Distance: nnDist,
					Size:     size[a],
				})
				node[a] = nextNode
				nextNode++
				remaining--
				break
			}
			chain = append(chain, nn)
		}
	}
	return d
}

// mergeInto merges slot b into slot a, updating w per Lance–Williams.
func mergeInto(w [][]float64, active []bool, size []int, a, b int, dab float64, linkage Linkage) {
	na, nb := float64(size[a]), float64(size[b])
	for k := range active {
		if !active[k] || k == a || k == b {
			continue
		}
		dak, dbk := w[a][k], w[b][k]
		var dnew float64
		switch linkage {
		case GroupAverage:
			dnew = (na*dak + nb*dbk) / (na + nb)
		case Single:
			dnew = dak
			if dbk < dnew {
				dnew = dbk
			}
		case Complete:
			dnew = dak
			if dbk > dnew {
				dnew = dbk
			}
		default:
			panic(fmt.Sprintf("cluster: unknown linkage %d", linkage))
		}
		w[a][k] = dnew
		w[k][a] = dnew
	}
	size[a] += size[b]
	active[b] = false
}

// Heights returns the merge distances in merge order.
func (d *Dendrogram) Heights() []float64 {
	out := make([]float64, len(d.Merges))
	for i, m := range d.Merges {
		out[i] = m.Distance
	}
	return out
}

// CutDistance returns the flat clustering obtained by applying every merge
// with Distance <= threshold. Each cluster is a sorted slice of leaf
// indices; clusters are ordered by their smallest leaf.
func (d *Dendrogram) CutDistance(threshold float64) [][]int {
	apply := make([]bool, len(d.Merges))
	for i, m := range d.Merges {
		if m.Distance <= threshold {
			apply[i] = true
		}
	}
	return d.cut(apply)
}

// CutCount returns a flat clustering with exactly k clusters (or NumLeaves
// clusters if k exceeds it, or one cluster for k < 1), applying merges in
// ascending distance order.
func (d *Dendrogram) CutCount(k int) [][]int {
	n := d.NumLeaves
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// Sort merge indices by distance (stable in merge order for ties).
	idx := make([]int, len(d.Merges))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return d.Merges[idx[a]].Distance < d.Merges[idx[b]].Distance
	})
	apply := make([]bool, len(d.Merges))
	clusters := n
	for _, mi := range idx {
		if clusters <= k {
			break
		}
		apply[mi] = true
		clusters--
	}
	return d.cut(apply)
}

// cut materializes flat clusters from the subset of merges marked apply.
// A merge can only be applied if both children exist as current roots:
// merges referencing unapplied internal nodes are skipped, which matches
// cutting the tree by an antichain when apply is distance-monotone.
func (d *Dendrogram) cut(apply []bool) [][]int {
	n := d.NumLeaves
	if n == 0 {
		return nil
	}
	parent := make([]int, n+len(d.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	exists := make([]bool, n+len(d.Merges))
	for i := 0; i < n; i++ {
		exists[i] = true
	}
	for i, m := range d.Merges {
		id := n + i
		if !apply[i] || !exists[m.A] || !exists[m.B] {
			continue
		}
		ra, rb := find(m.A), find(m.B)
		parent[ra] = id
		parent[rb] = id
		exists[id] = true
	}
	groups := make(map[int][]int)
	for leaf := 0; leaf < n; leaf++ {
		r := find(leaf)
		groups[r] = append(groups[r], leaf)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Validate checks dendrogram invariants: n-1 merges, child ids in range and
// used at most once, sizes consistent. It is used by tests and by consumers
// loading dendrograms from untrusted sources.
func (d *Dendrogram) Validate() error {
	n := d.NumLeaves
	if n == 0 {
		if len(d.Merges) != 0 {
			return fmt.Errorf("cluster: %d merges with 0 leaves", len(d.Merges))
		}
		return nil
	}
	if len(d.Merges) != n-1 {
		return fmt.Errorf("cluster: %d merges for %d leaves, want %d", len(d.Merges), n, n-1)
	}
	used := make([]bool, n+len(d.Merges))
	sizes := make([]int, n+len(d.Merges))
	for i := 0; i < n; i++ {
		sizes[i] = 1
	}
	for i, m := range d.Merges {
		id := n + i
		if m.A < 0 || m.A >= id || m.B < 0 || m.B >= id {
			return fmt.Errorf("cluster: merge %d references invalid child (%d, %d)", i, m.A, m.B)
		}
		if m.A == m.B {
			return fmt.Errorf("cluster: merge %d merges node %d with itself", i, m.A)
		}
		if used[m.A] || used[m.B] {
			return fmt.Errorf("cluster: merge %d reuses a child", i)
		}
		used[m.A] = true
		used[m.B] = true
		sizes[id] = sizes[m.A] + sizes[m.B]
		if m.Size != sizes[id] {
			return fmt.Errorf("cluster: merge %d size %d, want %d", i, m.Size, sizes[id])
		}
	}
	if sizes[len(sizes)-1] != n {
		return fmt.Errorf("cluster: root covers %d leaves, want %d", sizes[len(sizes)-1], n)
	}
	return nil
}
