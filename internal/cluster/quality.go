package cluster

// Clustering quality utilities: the silhouette coefficient for judging a
// flat cut (used by the threshold-selection example and ablation analysis)
// and Newick serialization of dendrograms for external visualization.

import (
	"fmt"
	"strings"
)

// Silhouette returns the mean silhouette coefficient of the flat clustering
// over the distance matrix, in [-1, 1]; higher is better. Leaves in
// singleton clusters contribute 0 (the standard convention). It returns 0
// for degenerate clusterings (fewer than 2 clusters or fewer than 2 points).
func Silhouette(dm DistanceMatrix, clusters [][]int) float64 {
	n := dm.N()
	if n < 2 || len(clusters) < 2 {
		return 0
	}
	owner := make([]int, n)
	for ci, c := range clusters {
		for _, x := range c {
			owner[x] = ci
		}
	}
	total := 0.0
	counted := 0
	for ci, c := range clusters {
		for _, x := range c {
			if len(c) == 1 {
				counted++
				continue // silhouette 0
			}
			// a(x): mean distance to own cluster.
			a := 0.0
			for _, y := range c {
				if y != x {
					a += dm.At(x, y)
				}
			}
			a /= float64(len(c) - 1)
			// b(x): smallest mean distance to another cluster.
			b := -1.0
			for cj, d := range clusters {
				if cj == ci || len(d) == 0 {
					continue
				}
				s := 0.0
				for _, y := range d {
					s += dm.At(x, y)
				}
				s /= float64(len(d))
				if b < 0 || s < b {
					b = s
				}
			}
			max := a
			if b > max {
				max = b
			}
			if max > 0 {
				total += (b - a) / max
			}
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// BestCutBySilhouette scans candidate cluster counts (2..maxK) and returns
// the flat clustering with the highest silhouette, along with its score.
// It is a model-selection helper for choosing the dendrogram cut when no
// threshold is known a priori.
func (d *Dendrogram) BestCutBySilhouette(dm DistanceMatrix, maxK int) ([][]int, float64) {
	if maxK > d.NumLeaves {
		maxK = d.NumLeaves
	}
	var best [][]int
	bestScore := -2.0
	for k := 2; k <= maxK; k++ {
		cs := d.CutCount(k)
		if len(cs) != k {
			continue
		}
		s := Silhouette(dm, cs)
		if s > bestScore {
			best, bestScore = cs, s
		}
	}
	if best == nil {
		return d.CutCount(1), 0
	}
	return best, bestScore
}

// Newick serializes the dendrogram in Newick tree format with merge
// distances as branch annotations, e.g. "((0:0.1,1:0.1):0.5,2:0.5);".
// labels, when non-nil, names the leaves; otherwise leaf indices are used.
// An empty dendrogram yields ";" and a single leaf "0;".
func (d *Dendrogram) Newick(labels []string) string {
	n := d.NumLeaves
	if n == 0 {
		return ";"
	}
	name := func(leaf int) string {
		if labels != nil && leaf < len(labels) {
			return escapeNewick(labels[leaf])
		}
		return fmt.Sprintf("%d", leaf)
	}
	// Height of each node: leaves at 0, internal at merge distance.
	height := make([]float64, n+len(d.Merges))
	var render func(node int) string
	render = func(node int) string {
		if node < n {
			return name(node)
		}
		m := d.Merges[node-n]
		height[node] = m.Distance
		la := render(m.A)
		lb := render(m.B)
		branchA := m.Distance - height[m.A]
		branchB := m.Distance - height[m.B]
		if branchA < 0 {
			branchA = 0
		}
		if branchB < 0 {
			branchB = 0
		}
		return fmt.Sprintf("(%s:%.6g,%s:%.6g)", la, branchA, lb, branchB)
	}
	root := n + len(d.Merges) - 1
	if len(d.Merges) == 0 {
		return name(0) + ";"
	}
	return render(root) + ";"
}

// escapeNewick quotes labels containing Newick metacharacters.
func escapeNewick(s string) string {
	if strings.ContainsAny(s, "(),:;'[] \t") {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return s
}
