package cluster

import (
	"math/rand"
	"strings"
	"testing"
)

func twoBlobMatrix(rng *rand.Rand, n int) *testMatrix {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	half := n / 2
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var v float64
			if (i < half) == (j < half) {
				v = 0.1 + 0.05*rng.Float64()
			} else {
				v = 4 + rng.Float64()
			}
			d[i][j], d[j][i] = v, v
		}
	}
	return &testMatrix{d: d}
}

func TestSilhouetteSeparatesGoodFromBadCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := twoBlobMatrix(rng, 12)
	good := [][]int{{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}}
	bad := [][]int{{0, 1, 2, 6, 7, 8}, {3, 4, 5, 9, 10, 11}}
	sg := Silhouette(m, good)
	sb := Silhouette(m, bad)
	if sg < 0.8 {
		t.Errorf("good cut silhouette = %v, want high", sg)
	}
	if sb >= sg {
		t.Errorf("bad cut silhouette %v >= good %v", sb, sg)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := twoBlobMatrix(rng, 6)
	if s := Silhouette(m, [][]int{{0, 1, 2, 3, 4, 5}}); s != 0 {
		t.Errorf("single cluster silhouette = %v", s)
	}
	if s := Silhouette(mat([][]float64{{0}}), [][]int{{0}}); s != 0 {
		t.Errorf("single point silhouette = %v", s)
	}
}

func TestSilhouetteSingletonsContributeZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := twoBlobMatrix(rng, 6)
	all := [][]int{{0}, {1}, {2}, {3}, {4}, {5}}
	if s := Silhouette(m, all); s != 0 {
		t.Errorf("all-singleton silhouette = %v, want 0", s)
	}
}

func TestSilhouetteRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(12)
		m := randomMatrix(rng, n)
		d := Agglomerate(m, GroupAverage)
		for k := 2; k <= n; k++ {
			s := Silhouette(m, d.CutCount(k))
			if s < -1.0001 || s > 1.0001 {
				t.Fatalf("silhouette out of range: %v", s)
			}
		}
	}
}

func TestBestCutBySilhouetteFindsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := twoBlobMatrix(rng, 14)
	d := Agglomerate(m, GroupAverage)
	cs, score := d.BestCutBySilhouette(m, 10)
	if len(cs) != 2 {
		t.Errorf("best cut has %d clusters, want 2 (score %v)", len(cs), score)
	}
	if score < 0.8 {
		t.Errorf("best silhouette = %v", score)
	}
}

func TestBestCutDegenerate(t *testing.T) {
	d := Agglomerate(mat([][]float64{{0}}), GroupAverage)
	cs, score := d.BestCutBySilhouette(mat([][]float64{{0}}), 5)
	if len(cs) != 1 || score != 0 {
		t.Errorf("degenerate best cut = %v, %v", cs, score)
	}
}

func TestNewickBasic(t *testing.T) {
	m := mat([][]float64{
		{0, 1, 5},
		{1, 0, 4},
		{5, 4, 0},
	})
	d := Agglomerate(m, GroupAverage)
	nw := d.Newick(nil)
	if !strings.HasSuffix(nw, ";") {
		t.Fatalf("no terminator: %q", nw)
	}
	for _, leaf := range []string{"0", "1", "2"} {
		if !strings.Contains(nw, leaf) {
			t.Errorf("leaf %s missing from %q", leaf, nw)
		}
	}
	// Balanced parentheses.
	if strings.Count(nw, "(") != strings.Count(nw, ")") {
		t.Errorf("unbalanced: %q", nw)
	}
	// The first merge (0,1) at distance 1 must appear as a (0:..,1:..) group.
	if !strings.Contains(nw, "(0:1,1:1)") {
		t.Errorf("inner merge rendering: %q", nw)
	}
}

func TestNewickLabelsAndEscaping(t *testing.T) {
	m := mat([][]float64{
		{0, 1},
		{1, 0},
	})
	d := Agglomerate(m, GroupAverage)
	nw := d.Newick([]string{"admob.com", "host with space"})
	if !strings.Contains(nw, "admob.com") {
		t.Errorf("label missing: %q", nw)
	}
	if !strings.Contains(nw, "'host with space'") {
		t.Errorf("label not quoted: %q", nw)
	}
}

func TestNewickDegenerate(t *testing.T) {
	if got := (&Dendrogram{}).Newick(nil); got != ";" {
		t.Errorf("empty dendrogram = %q", got)
	}
	one := Agglomerate(mat([][]float64{{0}}), GroupAverage)
	if got := one.Newick(nil); got != "0;" {
		t.Errorf("single leaf = %q", got)
	}
	if got := one.Newick([]string{"leaf'name"}); !strings.Contains(got, "''") {
		t.Errorf("quote escaping = %q", got)
	}
}

func TestDendrogramJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := Agglomerate(randomMatrix(rng, 15), GroupAverage)
	var buf strings.Builder
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumLeaves != d.NumLeaves || len(got.Merges) != len(d.Merges) {
		t.Fatalf("round trip shape: %d/%d vs %d/%d",
			got.NumLeaves, len(got.Merges), d.NumLeaves, len(d.Merges))
	}
	for i := range d.Merges {
		if got.Merges[i] != d.Merges[i] {
			t.Fatalf("merge %d differs", i)
		}
	}
}

func TestDendrogramReadJSONValidates(t *testing.T) {
	// Structurally corrupt dendrograms must be rejected on load.
	bad := `{"num_leaves": 3, "merges": [{"A":0,"B":0,"Distance":1,"Size":2}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Error("corrupt dendrogram accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{nonsense")); err == nil {
		t.Error("garbage accepted")
	}
}
