package cluster

// Dendrogram serialization: the clustering server (Figure 3a) can persist
// or ship merge histories so signature generation, visualization, and audit
// happen offline from distance computation.

import (
	"encoding/json"
	"fmt"
	"io"
)

// dendrogramJSON is the wire form of a Dendrogram.
type dendrogramJSON struct {
	NumLeaves int     `json:"num_leaves"`
	Merges    []Merge `json:"merges"`
}

// WriteJSON serializes the dendrogram.
func (d *Dendrogram) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dendrogramJSON{NumLeaves: d.NumLeaves, Merges: d.Merges})
}

// ReadJSON deserializes a dendrogram written by WriteJSON and validates
// its structural invariants before returning it.
func ReadJSON(r io.Reader) (*Dendrogram, error) {
	var dj dendrogramJSON
	if err := json.NewDecoder(r).Decode(&dj); err != nil {
		return nil, fmt.Errorf("cluster: decoding dendrogram: %w", err)
	}
	d := &Dendrogram{NumLeaves: dj.NumLeaves, Merges: dj.Merges}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
