package cluster

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// testMatrix is an in-memory DistanceMatrix.
type testMatrix struct {
	d [][]float64
}

func (m *testMatrix) N() int              { return len(m.d) }
func (m *testMatrix) At(i, j int) float64 { return m.d[i][j] }

func mat(d [][]float64) *testMatrix { return &testMatrix{d: d} }

func randomMatrix(rng *rand.Rand, n int) *testMatrix {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// Distinct-ish values avoid tie ambiguity between algorithms.
			v := rng.Float64()*10 + float64(i*n+j)*1e-9
			d[i][j] = v
			d[j][i] = v
		}
	}
	return &testMatrix{d: d}
}

// naiveAgglomerate is the O(n^3) reference: repeatedly find the global
// minimum cluster pair and merge with Lance–Williams updates.
func naiveAgglomerate(dm DistanceMatrix, linkage Linkage) *Dendrogram {
	n := dm.N()
	d := &Dendrogram{NumLeaves: n}
	if n < 2 {
		return d
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			w[i][j] = dm.At(i, j)
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	node := make([]int, n)
	for i := range active {
		active[i] = true
		size[i] = 1
		node[i] = i
	}
	next := n
	for remaining := n; remaining > 1; remaining-- {
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if w[i][j] < bd {
					bi, bj, bd = i, j, w[i][j]
				}
			}
		}
		na, nb := float64(size[bi]), float64(size[bj])
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			var dn float64
			switch linkage {
			case GroupAverage:
				dn = (na*w[bi][k] + nb*w[bj][k]) / (na + nb)
			case Single:
				dn = math.Min(w[bi][k], w[bj][k])
			case Complete:
				dn = math.Max(w[bi][k], w[bj][k])
			}
			w[bi][k], w[k][bi] = dn, dn
		}
		a, b := node[bi], node[bj]
		if a > b {
			a, b = b, a
		}
		size[bi] += size[bj]
		active[bj] = false
		d.Merges = append(d.Merges, Merge{A: a, B: b, Distance: bd, Size: size[bi]})
		node[bi] = next
		next++
	}
	return d
}

func TestAgglomerateTiny(t *testing.T) {
	// Three points on a line: 0 --1-- 1 ----4---- 2
	m := mat([][]float64{
		{0, 1, 5},
		{1, 0, 4},
		{5, 4, 0},
	})
	d := Agglomerate(m, GroupAverage)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 2 {
		t.Fatalf("merges = %d", len(d.Merges))
	}
	first := d.Merges[0]
	if first.A != 0 || first.B != 1 || first.Distance != 1 {
		t.Errorf("first merge = %+v", first)
	}
	second := d.Merges[1]
	// Group average of {0,1} to {2} is (5+4)/2 = 4.5.
	if second.Distance != 4.5 {
		t.Errorf("second merge distance = %v, want 4.5", second.Distance)
	}
	if second.Size != 3 {
		t.Errorf("root size = %d", second.Size)
	}
}

func TestLinkageCriteriaDiffer(t *testing.T) {
	m := mat([][]float64{
		{0, 1, 5},
		{1, 0, 3},
		{5, 3, 0},
	})
	ga := Agglomerate(m, GroupAverage).Merges[1].Distance
	sg := Agglomerate(m, Single).Merges[1].Distance
	cp := Agglomerate(m, Complete).Merges[1].Distance
	if sg != 3 {
		t.Errorf("single root = %v, want 3", sg)
	}
	if cp != 5 {
		t.Errorf("complete root = %v, want 5", cp)
	}
	if ga != 4 {
		t.Errorf("group-average root = %v, want 4", ga)
	}
}

func TestAgglomerateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, linkage := range []Linkage{GroupAverage, Single, Complete} {
		for trial := 0; trial < 25; trial++ {
			n := 2 + rng.Intn(30)
			m := randomMatrix(rng, n)
			got := Agglomerate(m, linkage)
			want := naiveAgglomerate(m, linkage)
			if err := got.Validate(); err != nil {
				t.Fatalf("%v n=%d: invalid dendrogram: %v", linkage, n, err)
			}
			gh := got.Heights()
			wh := want.Heights()
			sort.Float64s(gh)
			sort.Float64s(wh)
			for i := range gh {
				if math.Abs(gh[i]-wh[i]) > 1e-9 {
					t.Fatalf("%v n=%d: height[%d] = %v, naive %v", linkage, n, i, gh[i], wh[i])
				}
			}
			// Flat cuts must agree too. Cut strictly between adjacent merge
			// heights: thresholds exactly on a height are ambiguous under
			// floating-point accumulation-order differences.
			for _, q := range []float64{0.25, 0.5, 0.75} {
				i := int(q * float64(len(wh)))
				thr := wh[i]
				if i+1 < len(wh) {
					thr = (wh[i] + wh[i+1]) / 2
				} else {
					thr = wh[i] + 1
				}
				if !sameClustering(got.CutDistance(thr), want.CutDistance(thr)) {
					t.Fatalf("%v n=%d: cut@%v differs", linkage, n, thr)
				}
			}
		}
	}
}

func sameClustering(a, b [][]int) bool {
	key := func(cs [][]int) string {
		var parts []string
		for _, c := range cs {
			s := ""
			for _, x := range c {
				s += string(rune('A'+x%26)) + string(rune('0'+x/26))
			}
			parts = append(parts, s)
		}
		sort.Strings(parts)
		out := ""
		for _, p := range parts {
			out += p + "|"
		}
		return out
	}
	return key(a) == key(b)
}

func TestGroupAverageMonotone(t *testing.T) {
	// Group-average linkage is reducible, so NN-chain merge heights sorted
	// ascending must equal a valid monotone sequence (no inversions when
	// sorted); additionally CutCount(k) must nest as k decreases.
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(rng, 40)
	d := Agglomerate(m, GroupAverage)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	prev := d.CutCount(40)
	if len(prev) != 40 {
		t.Fatalf("CutCount(40) = %d clusters", len(prev))
	}
	for k := 39; k >= 1; k-- {
		cur := d.CutCount(k)
		if len(cur) != k {
			t.Fatalf("CutCount(%d) = %d clusters", k, len(cur))
		}
		if !nests(cur, prev) {
			t.Fatalf("CutCount(%d) does not nest in CutCount(%d)", k, k+1)
		}
		prev = cur
	}
}

// nests reports whether every cluster of finer is contained in some cluster
// of coarser.
func nests(coarser, finer [][]int) bool {
	owner := make(map[int]int)
	for ci, c := range coarser {
		for _, x := range c {
			owner[x] = ci
		}
	}
	for _, f := range finer {
		first := owner[f[0]]
		for _, x := range f[1:] {
			if owner[x] != first {
				return false
			}
		}
	}
	return true
}

func TestCutDistanceExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomMatrix(rng, 12)
	d := Agglomerate(m, GroupAverage)
	all := d.CutDistance(math.Inf(1))
	if len(all) != 1 || len(all[0]) != 12 {
		t.Errorf("cut at +inf = %v", all)
	}
	none := d.CutDistance(-1)
	if len(none) != 12 {
		t.Errorf("cut at -1 gives %d clusters", len(none))
	}
}

func TestCutCountClamps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randomMatrix(rng, 6)
	d := Agglomerate(m, GroupAverage)
	if got := d.CutCount(0); len(got) != 1 {
		t.Errorf("CutCount(0) = %d clusters", len(got))
	}
	if got := d.CutCount(100); len(got) != 6 {
		t.Errorf("CutCount(100) = %d clusters", len(got))
	}
}

func TestDegenerateInputs(t *testing.T) {
	empty := Agglomerate(mat(nil), GroupAverage)
	if err := empty.Validate(); err != nil {
		t.Error(err)
	}
	if got := empty.CutDistance(1); got != nil {
		t.Errorf("cut of empty = %v", got)
	}
	one := Agglomerate(mat([][]float64{{0}}), GroupAverage)
	if err := one.Validate(); err != nil {
		t.Error(err)
	}
	cs := one.CutDistance(0)
	if len(cs) != 1 || len(cs[0]) != 1 || cs[0][0] != 0 {
		t.Errorf("cut of singleton = %v", cs)
	}
}

func TestIdenticalPoints(t *testing.T) {
	// All-zero distances: everything merges at height 0.
	n := 5
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	dend := Agglomerate(mat(d), GroupAverage)
	if err := dend.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, m := range dend.Merges {
		if m.Distance != 0 {
			t.Errorf("merge distance = %v, want 0", m.Distance)
		}
	}
	cs := dend.CutDistance(0)
	if len(cs) != 1 {
		t.Errorf("cut at 0 = %d clusters, want 1", len(cs))
	}
}

func TestValidateRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	good := Agglomerate(randomMatrix(rng, 8), GroupAverage)
	corrupt := []func(*Dendrogram){
		func(d *Dendrogram) { d.Merges = d.Merges[:len(d.Merges)-1] },
		func(d *Dendrogram) { d.Merges[0].A = d.Merges[0].B },
		func(d *Dendrogram) { d.Merges[0].A = 99 },
		func(d *Dendrogram) { d.Merges[len(d.Merges)-1].Size = 3 },
		func(d *Dendrogram) { d.Merges[1].A = d.Merges[0].A },
	}
	for i, f := range corrupt {
		c := &Dendrogram{NumLeaves: good.NumLeaves, Merges: append([]Merge(nil), good.Merges...)}
		f(c)
		if err := c.Validate(); err == nil {
			t.Errorf("corruption %d not detected", i)
		}
	}
}

func TestLinkageString(t *testing.T) {
	if GroupAverage.String() != "group-average" || Single.String() != "single" ||
		Complete.String() != "complete" || Linkage(9).String() != "unknown" {
		t.Error("linkage names")
	}
}

func TestTwoNaturalClustersRecovered(t *testing.T) {
	// Two well-separated blobs: leaves 0-3 mutually close, 4-7 mutually
	// close, inter-blob far. CutCount(2) must recover them exactly.
	n := 8
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var v float64
			if (i < 4) == (j < 4) {
				v = 0.1 + 0.05*rng.Float64()
			} else {
				v = 5 + rng.Float64()
			}
			d[i][j], d[j][i] = v, v
		}
	}
	dend := Agglomerate(mat(d), GroupAverage)
	cs := dend.CutCount(2)
	if len(cs) != 2 {
		t.Fatalf("clusters = %v", cs)
	}
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	if !sameClustering(cs, want) {
		t.Errorf("clusters = %v, want %v", cs, want)
	}
}
