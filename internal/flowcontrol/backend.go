package flowcontrol

import (
	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
)

// TenantKeyFunc derives a tenant key from a packet — the routing function
// for pool-backed vetting. The destination host is the natural key for a
// proxy (each ad network's hosts form one population); the App field
// isolates per-application cohorts instead.
type TenantKeyFunc func(p *httpmodel.Packet) string

// ByHost keys tenants on the packet's destination host.
func ByHost(p *httpmodel.Packet) string { return p.Host }

// ByApp keys tenants on the capturing application's package name, falling
// back to the host when the packet carries no app identity.
func ByApp(p *httpmodel.Packet) string {
	if p.App != "" {
		return p.App
	}
	return p.Host
}

// poolBackend routes each packet to a per-tenant engine inside a
// multi-tenant pool.
type poolBackend struct {
	pool *engine.Pool
	key  TenantKeyFunc
}

// NewPoolBackend adapts a multi-tenant engine pool to the Backend
// interface: every vetted packet is matched against the signature set of
// the tenant key derives (nil means ByHost), so one proxy enforces
// per-population signature sets — per-host ad-network isolation, per-app
// cohorts, or canary sets on a slice of traffic — with tenants created
// lazily and evicted per the pool's policy.
func NewPoolBackend(pool *engine.Pool, key TenantKeyFunc) Backend {
	if key == nil {
		key = ByHost
	}
	return &poolBackend{pool: pool, key: key}
}

// MatchPacket implements Backend.
func (b *poolBackend) MatchPacket(p *httpmodel.Packet) []int {
	return b.pool.MatchPacket(b.key(p), p)
}

// observedBackend forwards unmatched packets to an observer.
type observedBackend struct {
	b      Backend
	onMiss func(*httpmodel.Packet)
}

// NewObservedBackend wraps a backend so every vetted packet that matches
// no signature is also handed to onMiss — the proxy's suspect-flow
// forwarding hook into online signature generation (siggen.Service's
// Observe, or an HTTP relay to cmd/siggend). onMiss runs inline on the
// request path and must be fast and non-blocking; the siggen intake's
// lock-free channel offer qualifies. A nil onMiss returns the backend
// unwrapped.
func NewObservedBackend(b Backend, onMiss func(*httpmodel.Packet)) Backend {
	if onMiss == nil {
		return b
	}
	return &observedBackend{b: b, onMiss: onMiss}
}

// MatchPacket implements Backend.
func (o *observedBackend) MatchPacket(p *httpmodel.Packet) []int {
	matched := o.b.MatchPacket(p)
	if len(matched) == 0 {
		o.onMiss(p)
	}
	return matched
}
