package flowcontrol

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

func leakSet() *signature.Set {
	return &signature.Set{Signatures: []*signature.Signature{
		{ID: 0, Tokens: []string{"imei=353918051234563"}, ClusterSize: 3},
		{ID: 1, Tokens: []string{"dev=8a6b1c9f33d200e7"}, ClusterSize: 2},
	}}
}

// proxyThrough issues a request through the proxy handler as a proxy-style
// client would (absolute URL).
func proxyThrough(t *testing.T, proxy *Proxy, method, rawURL, body string) *http.Response {
	t.Helper()
	ps := httptest.NewServer(proxy)
	t.Cleanup(ps.Close)
	proxyURL, _ := url.Parse(ps.URL)
	client := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)}}
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, rawURL, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestProxyAllowsBenign(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "origin-ok")
	}))
	defer origin.Close()

	proxy := NewProxy(leakSet(), BlockMatched(), nil)
	resp := proxyThrough(t, proxy, "GET", origin.URL+"/index.html?q=weather", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("benign request blocked: %s", resp.Status)
	}
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "origin-ok" {
		t.Errorf("body = %q", b)
	}
	allowed, blocked := proxy.Stats()
	if allowed != 1 || blocked != 0 {
		t.Errorf("stats = %d/%d", allowed, blocked)
	}
}

func TestProxyBlocksLeakInQuery(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("leaking request reached origin")
	}))
	defer origin.Close()

	proxy := NewProxy(leakSet(), BlockMatched(), nil)
	resp := proxyThrough(t, proxy, "GET", origin.URL+"/ad?zone=1&imei=353918051234563", "")
	if resp.StatusCode != http.StatusUnavailableForLegalReasons {
		t.Fatalf("status = %s, want 451", resp.Status)
	}
	if got := resp.Header.Get("X-Leaksig-Matched"); !strings.Contains(got, "0") {
		t.Errorf("matched header = %q", got)
	}
	allowed, blocked := proxy.Stats()
	if allowed != 0 || blocked != 1 {
		t.Errorf("stats = %d/%d", allowed, blocked)
	}
}

func TestProxyBlocksLeakInBody(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("leaking POST reached origin")
	}))
	defer origin.Close()
	proxy := NewProxy(leakSet(), BlockMatched(), nil)
	resp := proxyThrough(t, proxy, "POST", origin.URL+"/collect", "app=x&dev=8a6b1c9f33d200e7&ver=3")
	if resp.StatusCode != http.StatusUnavailableForLegalReasons {
		t.Fatalf("status = %s, want 451", resp.Status)
	}
}

func TestProxyForwardsBodyIntact(t *testing.T) {
	var got string
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got = string(b)
	}))
	defer origin.Close()
	proxy := NewProxy(leakSet(), BlockMatched(), nil)
	body := "stage=3&score=120&session=abcdef"
	resp := proxyThrough(t, proxy, "POST", origin.URL+"/v1/score", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if got != body {
		t.Errorf("origin saw body %q, want %q", got, body)
	}
}

func TestPromptPolicy(t *testing.T) {
	asked := 0
	allowIt := PromptMatched(func(p *httpmodel.Packet, matched []int) bool {
		asked++
		return true
	})
	denyIt := PromptMatched(func(p *httpmodel.Packet, matched []int) bool { return false })
	headless := PromptMatched(nil)

	pkt := httpmodel.Get("x.example", "/a?imei=353918051234563").Dest(1, 80).Build()
	if got := allowIt.Decide(pkt, []int{0}); got != Allow {
		t.Errorf("confirmed prompt = %v", got)
	}
	if asked != 1 {
		t.Errorf("confirm callback calls = %d", asked)
	}
	if got := denyIt.Decide(pkt, []int{0}); got != Block {
		t.Errorf("denied prompt = %v", got)
	}
	if got := headless.Decide(pkt, []int{0}); got != Block {
		t.Errorf("headless prompt = %v", got)
	}
	if got := allowIt.Decide(pkt, nil); got != Allow {
		t.Errorf("non-matching = %v", got)
	}
}

func TestAuditLog(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer origin.Close()
	proxy := NewProxy(leakSet(), BlockMatched(), nil)
	proxyThrough(t, proxy, "GET", origin.URL+"/benign", "")
	proxyThrough(t, proxy, "GET", origin.URL+"/x?imei=353918051234563", "")
	audit := proxy.Audit()
	if len(audit) != 2 {
		t.Fatalf("audit entries = %d", len(audit))
	}
	if audit[0].Action != Allow || audit[1].Action != Block {
		t.Errorf("audit actions = %v, %v", audit[0].Action, audit[1].Action)
	}
	if len(audit[1].Matched) != 1 || audit[1].Matched[0] != 0 {
		t.Errorf("audit matched = %v", audit[1].Matched)
	}
	if audit[1].Host == "" || audit[1].Path == "" || audit[1].Time.IsZero() {
		t.Errorf("audit entry incomplete: %+v", audit[1])
	}
}

func TestHotSwapSignatures(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer origin.Close()
	proxy := NewProxy(&signature.Set{}, BlockMatched(), nil)
	resp := proxyThrough(t, proxy, "GET", origin.URL+"/x?imei=353918051234563", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty set should allow: %s", resp.Status)
	}
	proxy.SetSignatures(leakSet())
	resp = proxyThrough(t, proxy, "GET", origin.URL+"/x?imei=353918051234563", "")
	if resp.StatusCode != http.StatusUnavailableForLegalReasons {
		t.Fatalf("after hot swap: %s, want 451", resp.Status)
	}
	proxy.SetSignatures(nil) // nil degrades to empty set
	resp = proxyThrough(t, proxy, "GET", origin.URL+"/x?imei=353918051234563", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after clearing: %s", resp.Status)
	}
}

func TestConnectRefused(t *testing.T) {
	proxy := NewProxy(leakSet(), BlockMatched(), nil)
	req := httptest.NewRequest(http.MethodConnect, "example.com:443", nil)
	rw := httptest.NewRecorder()
	proxy.ServeHTTP(rw, req)
	if rw.Code != http.StatusNotImplemented {
		t.Errorf("CONNECT = %d", rw.Code)
	}
}

func TestUpstreamFailure(t *testing.T) {
	proxy := NewProxy(&signature.Set{}, BlockMatched(), nil)
	resp := proxyThrough(t, proxy, "GET", "http://127.0.0.1:1/unreachable", "")
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unreachable upstream = %s, want 502", resp.Status)
	}
}

func TestActionString(t *testing.T) {
	if Allow.String() != "allow" || Block.String() != "block" ||
		Prompt.String() != "prompt" || Action(9).String() != "unknown" {
		t.Error("action names")
	}
}

// TestEngineBackend vets requests through the streaming engine's
// synchronous matcher: the proxy inherits the engine's hot reload — one
// Reload flips the verdict for both the stream and the proxy.
func TestEngineBackend(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer origin.Close()

	eng := engine.New(&signature.Set{}, engine.Config{Shards: 1})
	defer eng.Close()
	proxy := NewProxyWith(eng, BlockMatched(), nil)
	if proxy.Engine() != nil {
		t.Error("Engine() should be nil with a streaming backend")
	}
	if proxy.Backend() == nil {
		t.Fatal("Backend() is nil")
	}

	leakURL := origin.URL + "/x?imei=353918051234563"
	resp := proxyThrough(t, proxy, "GET", leakURL, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty engine should allow: %s", resp.Status)
	}

	eng.Reload(leakSet())
	resp = proxyThrough(t, proxy, "GET", leakURL, "")
	if resp.StatusCode != http.StatusUnavailableForLegalReasons {
		t.Fatalf("after engine reload: %s, want 451", resp.Status)
	}
}

func TestSetBackendNil(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer origin.Close()
	proxy := NewProxyWith(nil, BlockMatched(), nil)
	if proxy.Engine() == nil {
		t.Error("nil backend should degrade to an empty conjunction engine")
	}
	resp := proxyThrough(t, proxy, "GET", origin.URL+"/x?imei=353918051234563", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nil backend should allow everything: %s", resp.Status)
	}
}
