// Package flowcontrol implements the on-device half of the paper's system
// (Figure 3b): "The information flow control application inspects network
// traffic using the Android API and detects sensitive information leakage
// using the ... server generated signatures. It does not require any
// special privileges."
//
// The reproduction realizes the interposition point as a local HTTP forward
// proxy — the same vantage an unprivileged Android 2.x application gets by
// registering itself as the APN proxy. Every outgoing request is converted
// to the packet model, matched against the current signature set, and
// subjected to a policy (allow / block / prompt); every decision lands in
// an audit log, giving the user exactly the per-transmission control the
// paper argues Android lacks (§III-A).
//
// Matching is delegated through the swappable Backend interface: a batch
// detect.Engine for a static set, a streaming engine.Engine for sharded
// hot reload, or — via NewPoolBackend — a multi-tenant engine.Pool that
// vets each destination host (or app) against its own population's
// signature set.
package flowcontrol

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// Action is a policy outcome for one request.
type Action int

// Actions. Prompt defers to the policy's interactive callback; in headless
// deployments it degrades to Block.
const (
	Allow Action = iota
	Block
	Prompt
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Allow:
		return "allow"
	case Block:
		return "block"
	case Prompt:
		return "prompt"
	default:
		return "unknown"
	}
}

// Policy decides what to do with a request given the signatures it matched.
type Policy interface {
	Decide(p *httpmodel.Packet, matched []int) Action
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc func(p *httpmodel.Packet, matched []int) Action

// Decide implements Policy.
func (f PolicyFunc) Decide(p *httpmodel.Packet, matched []int) Action { return f(p, matched) }

// BlockMatched blocks any request matching at least one signature — the
// strictest default.
func BlockMatched() Policy {
	return PolicyFunc(func(_ *httpmodel.Packet, matched []int) Action {
		if len(matched) > 0 {
			return Block
		}
		return Allow
	})
}

// PromptMatched asks the user about each matching request via confirm and
// allows everything else. A nil confirm blocks every match (headless).
func PromptMatched(confirm func(p *httpmodel.Packet, matched []int) bool) Policy {
	return PolicyFunc(func(p *httpmodel.Packet, matched []int) Action {
		if len(matched) == 0 {
			return Allow
		}
		if confirm == nil {
			return Block
		}
		if confirm(p, matched) {
			return Allow
		}
		return Block
	})
}

// AuditEntry records one decision.
type AuditEntry struct {
	Time    time.Time
	Method  string
	Host    string
	Path    string
	Matched []int // signature IDs
	Action  Action
}

// Backend vets one packet and returns the IDs of the signatures it
// matches. *detect.Engine satisfies it directly; so does the streaming
// *engine.Engine via its synchronous MatchPacket, which gives the proxy
// the engine's sharded hot-reload semantics without a second reload path.
// Implementations must be safe for concurrent use.
type Backend interface {
	MatchPacket(p *httpmodel.Packet) []int
}

// backendBox wraps a Backend so it can live in an atomic.Pointer.
type backendBox struct{ b Backend }

// Proxy is the flow-control forward proxy. Backends are swappable at
// runtime, so a sigserver.Client refresh loop can hot-reload signatures.
type Proxy struct {
	backend   atomic.Pointer[backendBox]
	policy    Policy
	transport http.RoundTripper

	mu    sync.Mutex
	audit []AuditEntry

	allowed atomic.Int64
	blocked atomic.Int64
}

// NewProxy builds a proxy enforcing the signature set with the policy.
// transport may be nil for http.DefaultTransport.
func NewProxy(set *signature.Set, policy Policy, transport http.RoundTripper) *Proxy {
	p := newProxy(policy, transport)
	p.SetSignatures(set)
	return p
}

// NewProxyWith builds a proxy vetting requests through an arbitrary
// matcher backend — e.g. a streaming engine.Engine whose signature set a
// sigserver watch keeps current.
func NewProxyWith(backend Backend, policy Policy, transport http.RoundTripper) *Proxy {
	p := newProxy(policy, transport)
	p.SetBackend(backend)
	return p
}

func newProxy(policy Policy, transport http.RoundTripper) *Proxy {
	if policy == nil {
		policy = BlockMatched()
	}
	if transport == nil {
		transport = http.DefaultTransport
	}
	return &Proxy{policy: policy, transport: transport}
}

// SetSignatures hot-swaps the signature set, replacing the backend with a
// freshly compiled conjunction engine.
func (p *Proxy) SetSignatures(set *signature.Set) {
	if set == nil {
		set = &signature.Set{}
	}
	p.SetBackend(detect.NewEngine(set))
}

// SetBackend hot-swaps the matcher backend. A nil backend installs an
// empty signature set.
func (p *Proxy) SetBackend(b Backend) {
	if b == nil {
		b = detect.NewEngine(&signature.Set{})
	}
	p.backend.Store(&backendBox{b: b})
}

// Backend returns the current matcher backend.
func (p *Proxy) Backend() Backend { return p.backend.Load().b }

// Engine returns the current detection engine when the backend is a
// conjunction engine, and nil when an alternative backend is installed.
func (p *Proxy) Engine() *detect.Engine {
	eng, _ := p.backend.Load().b.(*detect.Engine)
	return eng
}

// Stats returns how many requests were allowed and blocked.
func (p *Proxy) Stats() (allowed, blocked int64) {
	return p.allowed.Load(), p.blocked.Load()
}

// Audit returns a copy of the audit log.
func (p *Proxy) Audit() []AuditEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]AuditEntry(nil), p.audit...)
}

func (p *Proxy) record(e AuditEntry) {
	p.mu.Lock()
	p.audit = append(p.audit, e)
	p.mu.Unlock()
}

// packetFromRequest converts an outgoing proxied request into the packet
// model. The body is read and restored so the request can still be
// forwarded.
func packetFromRequest(r *http.Request) (*httpmodel.Packet, error) {
	pkt := &httpmodel.Packet{
		Method: r.Method,
		Proto:  "HTTP/1.1",
		Host:   r.Host,
	}
	if pkt.Host == "" {
		pkt.Host = r.URL.Host
	}
	if h, port, ok := strings.Cut(pkt.Host, ":"); ok {
		pkt.Host = h
		if n, err := strconv.Atoi(port); err == nil {
			pkt.DstPort = uint16(n)
		}
	} else if pkt.DstPort == 0 {
		pkt.DstPort = 80
	}
	pkt.Path = r.URL.RequestURI()
	for name, vals := range r.Header {
		for _, v := range vals {
			pkt.Headers = append(pkt.Headers, httpmodel.Header{Name: name, Value: v})
		}
	}
	if r.Body != nil && r.Body != http.NoBody {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			return nil, fmt.Errorf("flowcontrol: reading request body: %w", err)
		}
		r.Body.Close()
		pkt.Body = body
		r.Body = io.NopCloser(strings.NewReader(string(body)))
		r.ContentLength = int64(len(body))
	}
	return pkt, nil
}

// ServeHTTP implements the forward proxy: vet, then forward or refuse.
// Blocked requests receive 451 Unavailable For Legal Reasons with a
// description of the matched signatures.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodConnect {
		// HTTPS tunneling would blind the inspector; the paper's scope is
		// cleartext HTTP (§VI), so tunnels are refused.
		http.Error(w, "flowcontrol: CONNECT tunnels are not inspected", http.StatusNotImplemented)
		return
	}
	pkt, err := packetFromRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	matched := p.backend.Load().b.MatchPacket(pkt)
	action := p.policy.Decide(pkt, matched)
	if action == Prompt {
		action = Block
	}
	p.record(AuditEntry{
		Time:    time.Now(),
		Method:  pkt.Method,
		Host:    pkt.Host,
		Path:    pkt.Path,
		Matched: matched,
		Action:  action,
	})
	if action == Block {
		p.blocked.Add(1)
		w.Header().Set("X-Leaksig-Matched", fmt.Sprint(matched))
		http.Error(w,
			fmt.Sprintf("leaksig: transmission blocked: matched signatures %v", matched),
			http.StatusUnavailableForLegalReasons)
		return
	}
	p.allowed.Add(1)
	p.forward(w, r)
}

func (p *Proxy) forward(w http.ResponseWriter, r *http.Request) {
	out := r.Clone(r.Context())
	out.RequestURI = "" // client requests must not carry RequestURI
	if out.URL.Scheme == "" {
		out.URL.Scheme = "http"
	}
	if out.URL.Host == "" {
		out.URL.Host = r.Host
	}
	resp, err := p.transport.RoundTrip(out)
	if err != nil {
		http.Error(w, fmt.Sprintf("flowcontrol: upstream: %v", err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for name, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(name, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) // best effort; the client sees a truncated body on error
}
