package flowcontrol

import (
	"testing"

	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

func hostSet(id int, token string) *signature.Set {
	return &signature.Set{Signatures: []*signature.Signature{
		{ID: id, Tokens: []string{token}, ClusterSize: 2},
	}}
}

// TestPoolBackendPerHostTenancy gives two destination hosts two different
// signature sets through one pool-backed proxy: each host's traffic is
// vetted only against its own population's signatures.
func TestPoolBackendPerHostTenancy(t *testing.T) {
	pool := engine.NewPool(nil, engine.PoolConfig{Engine: engine.Config{Shards: 1}})
	defer pool.Close()
	pool.ReloadTenant("ads.alpha.com", hostSet(10, "udid=f3a9c1d2"))
	pool.ReloadTenant("cdn.beta.net", hostSet(20, "imei=353918051234563"))

	backend := NewPoolBackend(pool, nil) // nil key: ByHost
	mk := func(host, payload string) *httpmodel.Packet {
		return &httpmodel.Packet{
			Method: "GET", Proto: "HTTP/1.1",
			Host: host, Path: "/track?" + payload,
		}
	}
	if m := backend.MatchPacket(mk("ads.alpha.com", "udid=f3a9c1d2")); len(m) != 1 || m[0] != 10 {
		t.Fatalf("alpha host against alpha set = %v, want [10]", m)
	}
	// The same payload on the other host is invisible: beta's signatures
	// do not know alpha's identifier.
	if m := backend.MatchPacket(mk("cdn.beta.net", "udid=f3a9c1d2")); len(m) != 0 {
		t.Fatalf("alpha payload leaked into beta tenant: %v", m)
	}
	if m := backend.MatchPacket(mk("cdn.beta.net", "imei=353918051234563")); len(m) != 1 || m[0] != 20 {
		t.Fatalf("beta host against beta set = %v, want [20]", m)
	}
	// An unknown host lazily creates a tenant on the pool default (empty).
	if m := backend.MatchPacket(mk("other.gamma.org", "udid=f3a9c1d2")); len(m) != 0 {
		t.Fatalf("unknown host matched %v against the empty default set", m)
	}
	if got := len(pool.Tenants()); got != 3 {
		t.Fatalf("pool has %d tenants, want 3", got)
	}
}

// TestPoolBackendInProxy wires the pool backend through the full proxy
// vetting path.
func TestPoolBackendInProxy(t *testing.T) {
	pool := engine.NewPool(nil, engine.PoolConfig{Engine: engine.Config{Shards: 1}})
	defer pool.Close()
	pool.ReloadTenant("ads.alpha.com", hostSet(1, "dev=8a6b1c9f33d200e7"))

	proxy := NewProxyWith(NewPoolBackend(pool, ByHost), BlockMatched(), nil)
	resp := proxyThrough(t, proxy, "GET", "http://ads.alpha.com/t?dev=8a6b1c9f33d200e7", "")
	if resp.StatusCode != 451 {
		t.Fatalf("leak to signed host = %s, want 451", resp.Status)
	}
}

func TestTenantKeyFuncs(t *testing.T) {
	p := &httpmodel.Packet{Host: "h.example.com", App: "com.example.game"}
	if ByHost(p) != "h.example.com" {
		t.Error("ByHost")
	}
	if ByApp(p) != "com.example.game" {
		t.Error("ByApp with app identity")
	}
	if ByApp(&httpmodel.Packet{Host: "h.example.com"}) != "h.example.com" {
		t.Error("ByApp fallback to host")
	}
}

// TestObservedBackendForwardsMisses pins the suspect-flow forwarding
// contract: exactly the packets that match nothing reach the observer —
// the proxy-side feed of the online signature generator.
func TestObservedBackendForwardsMisses(t *testing.T) {
	eng := engine.New(hostSet(1, "dev=8a6b1c9f33d200e7"), engine.Config{Shards: 1})
	defer eng.Close()
	var misses []*httpmodel.Packet
	be := NewObservedBackend(eng, func(p *httpmodel.Packet) { misses = append(misses, p) })

	hit := &httpmodel.Packet{Host: "ads.alpha.com", Method: "GET", Path: "/t?dev=8a6b1c9f33d200e7", Proto: "HTTP/1.1"}
	miss := &httpmodel.Packet{Host: "cdn.beta.com", Method: "GET", Path: "/asset.js", Proto: "HTTP/1.1"}
	if got := be.MatchPacket(hit); len(got) == 0 {
		t.Fatal("signed packet did not match")
	}
	if got := be.MatchPacket(miss); len(got) != 0 {
		t.Fatal("clean packet matched")
	}
	if len(misses) != 1 || misses[0].Host != "cdn.beta.com" {
		t.Fatalf("observer saw %d misses (%v), want only the clean packet", len(misses), misses)
	}
	// A nil observer unwraps to the backend itself.
	if NewObservedBackend(eng, nil) != Backend(eng) {
		t.Fatal("nil observer should return the backend unwrapped")
	}
	// Inline vets through the wrapper land in the engine's telemetry.
	if m := eng.Metrics(); m.SyncVetted != 2 || m.SyncMatched != 1 {
		t.Fatalf("engine sync telemetry = %d/%d, want 2/1", m.SyncMatched, m.SyncVetted)
	}
}
