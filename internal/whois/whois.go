// Package whois implements the verification extension the paper sketches in
// §VI: "two HTTP packets may have close IP addresses but be owned [by]
// different organizations ... using a registration information process such
// as WHOIS could be helpful for the verification of IP addresses and domain
// names, which could be used to confirm the distances."
//
// The registry maps allocated address blocks to owning organizations (the
// synthetic universe publishes its allocation) and can confirm or refute
// the organizational assumption behind a small destination IP distance.
package whois

import (
	"fmt"
	"sort"
	"strings"

	"leaksig/internal/ipaddr"
)

// Record is one allocation: an organization and its address block.
type Record struct {
	Org   string
	Block ipaddr.Block
}

// Registry answers reverse lookups from addresses to allocations. It is
// immutable after construction and safe for concurrent use.
type Registry struct {
	records []Record // sorted by block base
}

// NewRegistry builds a registry from an organization → block map (the
// shape adnet.Universe.OrgBlocks returns).
func NewRegistry(orgBlocks map[string]ipaddr.Block) *Registry {
	recs := make([]Record, 0, len(orgBlocks))
	for org, b := range orgBlocks {
		recs = append(recs, Record{Org: org, Block: b})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Block.Base != recs[j].Block.Base {
			return recs[i].Block.Base < recs[j].Block.Base
		}
		return recs[i].Org < recs[j].Org
	})
	return &Registry{records: recs}
}

// Len returns the number of allocations.
func (r *Registry) Len() int { return len(r.records) }

// Lookup returns the allocation covering the address. When nested blocks
// cover the address the most specific (longest prefix) wins.
func (r *Registry) Lookup(a ipaddr.Addr) (Record, bool) {
	best := -1
	for i, rec := range r.records {
		if rec.Block.Contains(a) {
			if best < 0 || rec.Block.Bits > r.records[best].Block.Bits {
				best = i
			}
		}
	}
	if best < 0 {
		return Record{}, false
	}
	return r.records[best], true
}

// SameOrg reports whether both addresses resolve to the same organization.
// Unresolvable addresses are never the same organization.
func (r *Registry) SameOrg(a, b ipaddr.Addr) bool {
	ra, oka := r.Lookup(a)
	rb, okb := r.Lookup(b)
	return oka && okb && ra.Org == rb.Org
}

// Verdict classifies an IP-closeness claim.
type Verdict int

// Verdicts. Confirmed: the shared prefix really reflects one organization.
// Refuted: close addresses, different owners (the §VI hazard). Unknown: at
// least one address has no allocation on record.
const (
	Confirmed Verdict = iota
	Refuted
	Unknown
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Confirmed:
		return "confirmed"
	case Refuted:
		return "refuted"
	default:
		return "unknown"
	}
}

// VerifyCloseness checks the organizational claim behind a destination IP
// distance: addresses sharing at least minPrefix leading bits are claimed
// organizationally related. The registry confirms or refutes the claim;
// pairs that do not share minPrefix bits are vacuously Confirmed (no claim
// is being made).
func (r *Registry) VerifyCloseness(a, b ipaddr.Addr, minPrefix int) Verdict {
	if ipaddr.CommonPrefixLen(a, b) < minPrefix {
		return Confirmed
	}
	ra, oka := r.Lookup(a)
	rb, okb := r.Lookup(b)
	if !oka || !okb {
		return Unknown
	}
	if ra.Org == rb.Org {
		return Confirmed
	}
	return Refuted
}

// MetricResolver adapts the registry to distance.Config.OrgResolver: it
// reports organizational identity when both addresses are on record. Close
// addresses with different owners then stop contributing to packet
// similarity — the verification step §VI proposes.
func (r *Registry) MetricResolver() func(a, b ipaddr.Addr) (same, known bool) {
	return func(a, b ipaddr.Addr) (bool, bool) {
		ra, oka := r.Lookup(a)
		rb, okb := r.Lookup(b)
		if !oka || !okb {
			return false, false
		}
		return ra.Org == rb.Org, true
	}
}

// Text renders the allocation for an address in classic WHOIS style.
func (r *Registry) Text(a ipaddr.Addr) string {
	rec, ok := r.Lookup(a)
	if !ok {
		return fmt.Sprintf("%% no match for %s\n", a)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "inetnum:  %s\n", rec.Block)
	fmt.Fprintf(&b, "netname:  %s\n", strings.ToUpper(strings.ReplaceAll(rec.Org, " ", "-")))
	fmt.Fprintf(&b, "descr:    %s\n", rec.Org)
	return b.String()
}
