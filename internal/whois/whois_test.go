package whois

import (
	"strings"
	"testing"

	"leaksig/internal/adnet"
	"leaksig/internal/ipaddr"
)

func testRegistry() *Registry {
	return NewRegistry(map[string]ipaddr.Block{
		"Google":      ipaddr.MustParseBlock("64.16.0.0/16"),
		"Yahoo Japan": ipaddr.MustParseBlock("64.17.0.0/16"),
		"AdMaker":     ipaddr.MustParseBlock("103.16.0.0/16"),
	})
}

func TestLookup(t *testing.T) {
	r := testRegistry()
	rec, ok := r.Lookup(ipaddr.MustParse("64.16.200.1"))
	if !ok || rec.Org != "Google" {
		t.Errorf("Lookup = %+v, %v", rec, ok)
	}
	if _, ok := r.Lookup(ipaddr.MustParse("9.9.9.9")); ok {
		t.Error("unallocated address resolved")
	}
}

func TestLookupMostSpecificWins(t *testing.T) {
	r := NewRegistry(map[string]ipaddr.Block{
		"Big":   ipaddr.MustParseBlock("10.0.0.0/8"),
		"Small": ipaddr.MustParseBlock("10.5.0.0/16"),
	})
	rec, ok := r.Lookup(ipaddr.MustParse("10.5.1.1"))
	if !ok || rec.Org != "Small" {
		t.Errorf("most specific lookup = %+v", rec)
	}
	rec, _ = r.Lookup(ipaddr.MustParse("10.9.1.1"))
	if rec.Org != "Big" {
		t.Errorf("fallback lookup = %+v", rec)
	}
}

func TestSameOrg(t *testing.T) {
	r := testRegistry()
	if !r.SameOrg(ipaddr.MustParse("64.16.0.1"), ipaddr.MustParse("64.16.99.9")) {
		t.Error("same block should be same org")
	}
	if r.SameOrg(ipaddr.MustParse("64.16.0.1"), ipaddr.MustParse("64.17.0.1")) {
		t.Error("adjacent blocks of different orgs reported same")
	}
	if r.SameOrg(ipaddr.MustParse("64.16.0.1"), ipaddr.MustParse("9.9.9.9")) {
		t.Error("unallocated should never be same org")
	}
}

func TestVerifyCloseness(t *testing.T) {
	r := testRegistry()
	google1 := ipaddr.MustParse("64.16.0.1")
	google2 := ipaddr.MustParse("64.16.77.1")
	yahoo := ipaddr.MustParse("64.17.0.1") // shares 15 bits with google1
	far := ipaddr.MustParse("103.16.0.1")
	unknown := ipaddr.MustParse("9.9.9.9")

	if v := r.VerifyCloseness(google1, google2, 16); v != Confirmed {
		t.Errorf("same org closeness = %v", v)
	}
	// google1 and yahoo share a /15, so a 15-bit claim is made and refuted.
	if v := r.VerifyCloseness(google1, yahoo, 15); v != Refuted {
		t.Errorf("cross-org closeness = %v, want refuted", v)
	}
	// No claim between distant addresses: vacuously confirmed.
	if v := r.VerifyCloseness(google1, far, 16); v != Confirmed {
		t.Errorf("distant pair = %v", v)
	}
	if v := r.VerifyCloseness(google1, unknown, 0); v != Unknown {
		t.Errorf("unknown allocation = %v", v)
	}
}

func TestVerdictString(t *testing.T) {
	if Confirmed.String() != "confirmed" || Refuted.String() != "refuted" || Unknown.String() != "unknown" {
		t.Error("verdict names")
	}
}

func TestText(t *testing.T) {
	r := testRegistry()
	out := r.Text(ipaddr.MustParse("103.16.3.4"))
	for _, want := range []string{"inetnum:", "103.16.0.0/16", "AdMaker"} {
		if !strings.Contains(out, want) {
			t.Errorf("Text missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(r.Text(ipaddr.MustParse("9.9.9.9")), "no match") {
		t.Error("no-match text")
	}
}

func TestRegistryOverUniverse(t *testing.T) {
	// The synthetic universe's allocation must be self-consistent: every
	// profile's address resolves to its own organization.
	u := adnet.NewUniverse(107859)
	reg := NewRegistry(u.OrgBlocks())
	if reg.Len() == 0 {
		t.Fatal("empty registry")
	}
	for _, p := range u.Profiles {
		rec, ok := reg.Lookup(p.IP)
		if !ok {
			t.Fatalf("profile %s (%s) unresolvable", p.Host, p.IP)
		}
		if rec.Org != p.Org {
			t.Fatalf("profile %s resolves to %q, want %q", p.Host, rec.Org, p.Org)
		}
	}
	// Bridge hosts of one holding org must be confirmable; hosts of
	// different orgs sharing a /8 must be refutable at 8 bits under the
	// right pairs. Count outcomes over a sample of profile pairs.
	confirmed, refuted := 0, 0
	ps := u.Profiles
	for i := 0; i < len(ps); i += 7 {
		for j := i + 1; j < len(ps); j += 13 {
			switch reg.VerifyCloseness(ps[i].IP, ps[j].IP, 8) {
			case Confirmed:
				confirmed++
			case Refuted:
				refuted++
			}
		}
	}
	if confirmed == 0 || refuted == 0 {
		t.Errorf("verification outcomes degenerate: %d confirmed, %d refuted", confirmed, refuted)
	}
}

func TestMetricResolver(t *testing.T) {
	r := testRegistry()
	res := r.MetricResolver()
	same, known := res(ipaddr.MustParse("64.16.0.1"), ipaddr.MustParse("64.16.5.5"))
	if !known || !same {
		t.Errorf("same-org pair = %v, %v", same, known)
	}
	same, known = res(ipaddr.MustParse("64.16.0.1"), ipaddr.MustParse("64.17.0.1"))
	if !known || same {
		t.Errorf("cross-org pair = %v, %v", same, known)
	}
	_, known = res(ipaddr.MustParse("9.9.9.9"), ipaddr.MustParse("64.16.0.1"))
	if known {
		t.Error("unallocated pair should be unknown")
	}
}
