// Package adnet models the server side of the paper's measurement: the
// destinations the 1,188 applications talked to (Table II), the
// advertisement modules that embed device identifiers in their requests
// (§III-B, Table III), and the benign Web-API/CDN/analytics traffic that
// forms the normal group.
//
// Every destination is a Profile: a host with an allocated IPv4 address, a
// traffic category, calibration targets (packets and distinct apps, from
// Table II for the named domains), and a Build function that fabricates one
// HTTP request the way that service's client library did in 2012. Sensitive
// profiles consult the requesting application's permissions: a module only
// transmits the IMEI family when the host application holds
// READ_PHONE_STATE, while the Android ID needs no permission at all —
// which is exactly why hashed Android IDs dominate the paper's Table III.
package adnet

import (
	"fmt"
	"math/rand"

	"leaksig/internal/android"
	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
	"leaksig/internal/sensitive"
)

// Category classifies a destination's traffic.
type Category int

// Categories.
const (
	CatAdModule    Category = iota // Table II ad service with an SDK
	CatAdBeacon                    // long-tail tracking beacon (sensitive)
	CatUUIDTracker                 // beacon using a per-install UUID (benign)
	CatAnalytics
	CatCDN
	CatWebAPI
	CatPortal
	CatSocial
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatAdModule:
		return "ad-module"
	case CatAdBeacon:
		return "ad-beacon"
	case CatUUIDTracker:
		return "uuid-tracker"
	case CatAnalytics:
		return "analytics"
	case CatCDN:
		return "cdn"
	case CatWebAPI:
		return "web-api"
	case CatPortal:
		return "portal"
	case CatSocial:
		return "social"
	default:
		return "unknown"
	}
}

// AppInfo carries the per-application facts a module's client library can
// observe: the package name, granted permissions, and per-install values.
type AppInfo struct {
	Package       string
	HasPhoneState bool
	HasLocation   bool
	// InstallUUID is a mutable per-install identifier — the privacy-
	// preserving alternative the paper advocates (§III-B). Benign trackers
	// transmit this instead of UDIDs.
	InstallUUID string
	// PubID is the application's publisher/slot identifier at ad services.
	PubID string
}

// BuildCtx is the input to a Profile's Build function.
type BuildCtx struct {
	Rng    *rand.Rand
	Device *android.Device
	App    AppInfo
}

// Profile describes one destination.
type Profile struct {
	Host     string
	IP       ipaddr.Addr
	Port     uint16
	Category Category
	Org      string // owning organization (drives IP adjacency and WHOIS)

	// Calibration targets. For Table II rows these are the printed values;
	// tail profiles carry the family budgets divided per host.
	TargetPackets int
	TargetApps    int

	// Sensitive marks profiles whose Build can emit device identifiers.
	Sensitive bool
	// NeedsPhoneState biases app assignment toward applications holding
	// READ_PHONE_STATE so the module can actually read the IMEI family.
	NeedsPhoneState bool
	// Family groups hosts that run the same client library (e.g. the 75
	// plain-Android-ID beacon hosts). Signature generalization within a
	// family is what the detection sweep measures.
	Family string
	// HeavyOnly restricts assignment to the small set of high-fanout
	// applications (Table III's 21 plain-Android-ID apps; the paper's
	// embedded-browser outlier).
	HeavyOnly bool

	// Build fabricates one request from this destination's client library.
	Build func(ctx *BuildCtx) *httpmodel.Packet
}

// ipAllocator hands out organization-adjacent address blocks: hosts of one
// organization land in one /16, different organizations in different /16s
// spread over several /8s. This realizes the property the destination
// distance exploits: "if the upper bits of IP addresses match ... there is
// a high possibility that the two destinations are managed by the same
// organization" (§IV-B).
type ipAllocator struct {
	orgBlock map[string]ipaddr.Block
	orgNext  map[string]uint64
	nextSlot int
}

func newIPAllocator() *ipAllocator {
	return &ipAllocator{
		orgBlock: make(map[string]ipaddr.Block),
		orgNext:  make(map[string]uint64),
	}
}

// Bases for organization /16 blocks; documentation/test ranges are avoided
// so addresses look like production allocations.
var allocBases = []byte{23, 64, 93, 103, 150, 173, 199, 210}

func (a *ipAllocator) addr(org string) ipaddr.Addr {
	blk, ok := a.orgBlock[org]
	if !ok {
		base := allocBases[a.nextSlot%len(allocBases)]
		second := byte(16 + (a.nextSlot/len(allocBases))*4 + a.nextSlot%3)
		blk = ipaddr.Block{Base: ipaddr.FromOctets(base, second, 0, 0), Bits: 16}
		a.orgBlock[org] = blk
		a.nextSlot++
	}
	n := a.orgNext[org]
	a.orgNext[org] = n + 1
	// Spread hosts across the /16 while staying inside it.
	return blk.Nth((n*257 + 10) % blk.Size())
}

// Block returns the block allocated to org, if any.
func (a *ipAllocator) block(org string) (ipaddr.Block, bool) {
	b, ok := a.orgBlock[org]
	return b, ok
}

// Universe is the full destination population for one device: all profiles
// plus the organization registry backing the WHOIS extension.
type Universe struct {
	Profiles []*Profile
	orgs     map[string]ipaddr.Block
}

// OrgBlocks returns the organization → address block registry.
func (u *Universe) OrgBlocks() map[string]ipaddr.Block {
	out := make(map[string]ipaddr.Block, len(u.orgs))
	for k, v := range u.orgs {
		out[k] = v
	}
	return out
}

// ByCategory returns the profiles in the given category.
func (u *Universe) ByCategory(c Category) []*Profile {
	var out []*Profile
	for _, p := range u.Profiles {
		if p.Category == c {
			out = append(out, p)
		}
	}
	return out
}

// SensitiveProfiles returns profiles that can emit device identifiers.
func (u *Universe) SensitiveProfiles() []*Profile {
	var out []*Profile
	for _, p := range u.Profiles {
		if p.Sensitive {
			out = append(out, p)
		}
	}
	return out
}

// small value helpers shared by the builders

const hexAlphabet = "0123456789abcdef"

func randHex(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = hexAlphabet[rng.Intn(16)]
	}
	return string(b)
}

func randDigits(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + rng.Intn(10))
	}
	return string(b)
}

func randInt(rng *rand.Rand, lo, hi int) string {
	return fmt.Sprintf("%d", lo+rng.Intn(hi-lo+1))
}

// md5AID / sha1AID / md5IMEI / sha1IMEI are the transformations §III-B
// describes: "some modules compute [the] UDID's hash with a cryptographic
// hash function at the time of transmission."
func md5AID(d *android.Device) string   { return sensitive.MD5Hex(d.AndroidID) }
func sha1AID(d *android.Device) string  { return sensitive.SHA1Hex(d.AndroidID) }
func md5IMEI(d *android.Device) string  { return sensitive.MD5Hex(d.IMEI) }
func sha1IMEI(d *android.Device) string { return sensitive.SHA1Hex(d.IMEI) }
