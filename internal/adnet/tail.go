package adnet

// This file fabricates the long tail of destinations behind Table II's
// named rows: the paper's applications contacted far more hosts than the 26
// listed (mean 7.9 destinations over 1,188 apps), and Table III counts
// sensitive information flowing to up to 94 distinct hosts per identifier
// type. The tail contains
//
//   - beacon families: white-label tracking SDKs resold across many small
//     hosts. Three SDK vendors exist; hosts of one vendor share a request
//     skeleton. Most hosts additionally embed a fixed per-host endpoint
//     token (ep=...), so a cluster drawn from one host yields a signature
//     specific to that host — the micro generalization units behind the
//     paper's residual false negatives. Two hosts per vendor of *different*
//     identifier kinds are operated by one holding organization on adjacent
//     addresses with sibling hostnames: clusters bridging them lose every
//     value token and degrade to skeleton-only signatures, the generic-
//     signature hazard §VI discusses — and the source of false positives
//     that grow with N;
//   - the zqapk family: the paper's example module expecting "IMEI, and SIM
//     Serial ID, and Carrier name";
//   - UUID tracker families: the same vendor skeletons carrying a mutable
//     per-install UUID instead of a UDID (the design the paper advocates),
//     benign under the payload check and matched only by degraded
//     skeleton-only signatures; and
//   - assorted benign Web APIs, CDNs, portals and game backends.

import (
	"fmt"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
)

// Calibration constants for the tail (see DESIGN.md §4 and EXPERIMENTS.md
// for generated-vs-paper numbers).
const (
	aidBeaconHosts, aidBeaconPkts           = 75, 1200
	md5BeaconHosts, md5BeaconPkts           = 8, 2180
	sha1BeaconHosts, sha1BeaconPkts         = 8, 900
	imeiBeaconHosts, imeiBeaconPkts         = 80, 640
	imeiMD5BeaconHosts, imeiMD5BeaconPkts   = 4, 120
	imeiSHA1BeaconHosts, imeiSHA1BeaconPkts = 5, 260
	zqapkHosts, zqapkPkts                   = 20, 700
	benignTailHosts                         = 120
)

var tailNameWords = []string{
	"sakura", "hikari", "midori", "aozora", "kaze", "yuki", "hoshi",
	"umi", "mori", "tsuki", "hana", "sora", "kumo", "taiyo", "kawa",
	"yama", "tori", "neko", "inu", "momiji", "fuji", "nami", "ishi",
	"take", "matsu", "kin", "gin", "aka", "shiro", "kuro",
}

var tailAdWords = []string{
	"adpulse", "clickmesh", "tapgrid", "bannerline", "admix", "pingad",
	"trackone", "sparkad", "medialift", "adreach", "impact", "relay",
}

func tailWord(i int) string   { return tailNameWords[i%len(tailNameWords)] }
func tailAdWord(i int) string { return tailAdWords[i%len(tailAdWords)] }

// hostToken derives the fixed per-host endpoint identifier embedded in a
// host's requests (6 base-36 characters from an FNV hash of the hostname).
func hostToken(host string) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	h := uint64(14695981039346656037)
	for i := 0; i < len(host); i++ {
		h ^= uint64(host[i])
		h *= 1099511628211
	}
	b := make([]byte, 6)
	for i := range b {
		b[i] = alphabet[h%36]
		h /= 36
	}
	return string(b)
}

// vendor identifies one white-label SDK syntax.
type vendor int

const (
	vendorA vendor = iota // GET /v1/imp?pub&dev&sz&c[&ep]
	vendorB               // GET /sdk/track?key&device_id&fmt&r[&ep]
	vendorC               // POST /collect  app&did&ver&nonce[&ep]
)

// vendorSkeleton emits one request in the vendor's syntax. dev carries the
// identifier value; ep is the per-host endpoint token ("" omits it).
func vendorSkeleton(v vendor, ctx *BuildCtx, host, dev, ep string) *httpmodel.Packet {
	switch v {
	case vendorA:
		b := httpmodel.Get(host, "/v1/imp").
			Query("pub", ctx.App.PubID).
			Query("dev", dev).
			Query("sz", "320x50").
			Query("c", randHex(ctx.Rng, 8))
		if ep != "" {
			b.Query("ep", ep)
		}
		return b.UserAgent(ctx.Device.UserAgent()).Build()
	case vendorB:
		b := httpmodel.Get(host, "/sdk/track").
			Query("key", ctx.App.PubID).
			Query("device_id", dev).
			Query("fmt", "gif").
			Query("r", randHex(ctx.Rng, 8))
		if ep != "" {
			b.Query("ep", ep)
		}
		return b.UserAgent(ctx.Device.UserAgent()).Build()
	default:
		pairs := []string{
			"app", ctx.App.PubID,
			"did", dev,
			"ver", "3",
			"nonce", randHex(ctx.Rng, 8),
		}
		if ep != "" {
			pairs = append(pairs, "ep", ep)
		}
		return httpmodel.Post(host, "/collect").
			Form(pairs...).
			UserAgent(ctx.Device.UserAgent()).Build()
	}
}

type beaconFamily struct {
	family     string
	hosts      int
	packets    int
	appsPer    int
	heavy      bool
	phone      bool
	vendor     vendor
	perHost    bool   // embed the fixed ep token (per-host generalization unit)
	bridge     int    // leading hosts placed in the vendor's holding org
	bridgePkts int    // per-bridge-host packet budget (0: equal share)
	hostFmt    string // printf pattern over host index
	devValue   func(ctx *BuildCtx) string
}

func beaconFamilies() []beaconFamily {
	return []beaconFamily{
		{
			// One exact template family-wide: a single sampled pair covers
			// every md5-beacon host.
			family: "md5-beacon", hosts: md5BeaconHosts, packets: md5BeaconPkts,
			appsPer: 25, vendor: vendorA, bridge: 2, bridgePkts: 80,
			hostFmt:  "t%02d.%s-media.jp",
			devValue: func(ctx *BuildCtx) string { return md5AID(ctx.Device) },
		},
		{
			// Per-host endpoint tokens over many tiny hosts: each host is
			// its own generalization unit, the micro tail behind the
			// persistent false negatives.
			family: "imei-beacon", hosts: imeiBeaconHosts, packets: imeiBeaconPkts,
			appsPer: 3, phone: true, vendor: vendorA, perHost: true, bridge: 2, bridgePkts: 50,
			hostFmt:  "d%02d.%s-trk.info",
			devValue: func(ctx *BuildCtx) string { return ctx.Device.IMEI },
		},
		{
			family: "sha1-beacon", hosts: sha1BeaconHosts, packets: sha1BeaconPkts,
			appsPer: 15, vendor: vendorB, bridge: 2, bridgePkts: 80,
			hostFmt:  "s%02d.%s-analytics.com",
			devValue: func(ctx *BuildCtx) string { return sha1AID(ctx.Device) },
		},
		{
			family: "imeimd5-beacon", hosts: imeiMD5BeaconHosts, packets: imeiMD5BeaconPkts,
			appsPer: 12, phone: true, vendor: vendorB, perHost: true, bridge: 2, bridgePkts: 30,
			hostFmt:  "m%02d.%s-adserv.net",
			devValue: func(ctx *BuildCtx) string { return md5IMEI(ctx.Device) },
		},
		{
			// The plain-Android-ID beacons share one exact template (no ep):
			// the whole family is one generalization unit, reached by the
			// paper's 21 high-fanout applications.
			family: "aid-beacon", hosts: aidBeaconHosts, packets: aidBeaconPkts,
			appsPer: 4, heavy: true, vendor: vendorC, bridge: 2, bridgePkts: 80,
			hostFmt:  "b%02d.%s-net.asia",
			devValue: func(ctx *BuildCtx) string { return ctx.Device.AndroidID },
		},
		{
			family: "imeisha1-beacon", hosts: imeiSHA1BeaconHosts, packets: imeiSHA1BeaconPkts,
			appsPer: 12, phone: true, vendor: vendorC, perHost: true, bridge: 2, bridgePkts: 45,
			hostFmt:  "h%02d.%s-metrics.com",
			devValue: func(ctx *BuildCtx) string { return sha1IMEI(ctx.Device) },
		},
	}
}

// uuidTrackerFamily places benign per-install-UUID trackers on each vendor
// skeleton; only degraded skeleton-only signatures can match them.
type uuidTrackerFamily struct {
	vendor  vendor
	hosts   int
	packets int
}

func uuidTrackerFamilies() []uuidTrackerFamily {
	return []uuidTrackerFamily{
		{vendorA, 2, 500},
		{vendorB, 3, 750},
		{vendorC, 3, 750},
	}
}

// bridgeHostNames gives the holding organization's sibling hostnames per
// vendor: similar names on adjacent addresses make different-kind bridge
// hosts merge at the clustering threshold.
var bridgeHostNames = map[vendor][2]string{
	vendorA: {"img%d.adsrv-one.jp", "trk%d.adsrv-one.jp"},
	vendorB: {"img%d.pixel-gate.jp", "trk%d.pixel-gate.jp"},
	vendorC: {"img%d.collect-hub.jp", "trk%d.collect-hub.jp"},
}

func bridgeOrg(v vendor) string {
	return fmt.Sprintf("vendor-%c-holdings", 'a'+int(v))
}

// bridgeSlot tracks how many bridge hosts a vendor has placed so the two
// families of one vendor get sibling names from the same table.
type bridgeSlots map[vendor]int

func (bs bridgeSlots) hostName(v vendor, i int) string {
	slot := bs[v]
	bs[v] = slot + 1
	return fmt.Sprintf(bridgeHostNames[v][slot%2], slot/2+1)
}

// buildZqapk mirrors the paper's zqapk.com example: "zqapk.com expects
// IMEI, and SIM Serial ID, and Carrier name" — we additionally give it the
// IMSI, the only place Table III's IMSI traffic can plausibly come from.
func buildZqapk(ctx *BuildCtx, host string) *httpmodel.Packet {
	b := httpmodel.Get(host, "/u/reg").
		Query("imsi", ctx.Device.IMSI)
	if ctx.Rng.Float64() < 0.50 {
		b.Query("sim", ctx.Device.SIMSerial)
	}
	if ctx.Rng.Float64() < 0.60 {
		b.Query("carrier", ctx.Device.Carrier.Name)
	}
	if ctx.Rng.Float64() < 0.35 {
		b.Query("imei", ctx.Device.IMEI)
	}
	return b.Query("ch", ctx.App.PubID).
		Query("ep", hostToken(host)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

// benign tail builders, one per category rotation slot.

func buildTailAPI(ctx *BuildCtx, host string) *httpmodel.Packet {
	res := []string{"items", "list", "detail", "rank", "config"}[ctx.Rng.Intn(5)]
	return httpmodel.Get(host, "/v2/"+res).
		Query("format", "json").
		Query("lang", "ja").
		Query("page", randInt(ctx.Rng, 1, 50)).
		Query("sid", randHex(ctx.Rng, 16)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildTailCDN(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/assets/img/"+tailWord(ctx.Rng.Intn(999))+randInt(ctx.Rng, 1, 500)+".jpg").
		Header("Accept", "image/*").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildTailNews(ctx *BuildCtx, host string) *httpmodel.Packet {
	cat := []string{"sports", "enta", "it", "keizai", "kokusai"}[ctx.Rng.Intn(5)]
	return httpmodel.Get(host, "/news/"+cat+"/article-"+randInt(ctx.Rng, 1000, 99999)+".html").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildTailGame(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Post(host, "/v1/score").
		Form(
			"stage", randInt(ctx.Rng, 1, 60),
			"score", randDigits(ctx.Rng, 6),
			"session", randHex(ctx.Rng, 16),
		).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildTailWeather(ctx *BuildCtx, host string) *httpmodel.Packet {
	city := []string{"tokyo", "osaka", "nagoya", "sapporo", "fukuoka", "sendai"}[ctx.Rng.Intn(6)]
	return httpmodel.Get(host, "/api/weather").
		Query("city", city).
		Query("units", "metric").
		Query("os", "android").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildTailSNS(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/api/feed").
		Query("user", ctx.App.InstallUUID).
		Query("count", "20").
		Query("since", randDigits(ctx.Rng, 10)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

// NewUniverse assembles every destination profile for one device: Table II
// rows, beacon families, the zqapk family, UUID trackers, and the benign
// tail. totalPackets is the full trace size (the paper's 107,859); the
// benign tail absorbs whatever the calibrated families do not claim.
func NewUniverse(totalPackets int) *Universe {
	alloc := newIPAllocator()
	u := &Universe{}
	claimed := 0

	addProfile := func(p *Profile) {
		p.IP = alloc.addr(p.Org)
		if p.Port == 0 {
			p.Port = 80
		}
		u.Profiles = append(u.Profiles, p)
		claimed += p.TargetPackets
	}

	for _, e := range tableIIEntries() {
		e := e
		addProfile(&Profile{
			Host:            e.host,
			Category:        e.category,
			Org:             e.org,
			TargetPackets:   e.packets,
			TargetApps:      e.apps,
			Sensitive:       e.sensitive,
			NeedsPhoneState: e.needsPhoneState,
			Family:          e.host,
			Build: func(ctx *BuildCtx) *httpmodel.Packet {
				return e.build(ctx, e.host)
			},
		})
	}

	slots := make(bridgeSlots)
	for fi, f := range beaconFamilies() {
		f := f
		rest := f.packets
		restHosts := f.hosts
		if f.bridgePkts > 0 {
			rest -= f.bridge * f.bridgePkts
			restHosts -= f.bridge
			if rest < 0 {
				rest = 0
			}
		}
		per, extra := 0, 0
		if restHosts > 0 {
			per = rest / restHosts
			extra = rest % restHosts
		}
		for i := 0; i < f.hosts; i++ {
			var host, org string
			if i < f.bridge {
				host = slots.hostName(f.vendor, i)
				org = bridgeOrg(f.vendor)
			} else {
				host = fmt.Sprintf(f.hostFmt, i+1, tailAdWord(fi*7+i))
				org = fmt.Sprintf("%s-org-%d", f.family, i)
			}
			ep := ""
			if f.perHost {
				ep = hostToken(host)
			}
			var pkts int
			if i < f.bridge && f.bridgePkts > 0 {
				pkts = f.bridgePkts
			} else {
				pkts = per
				if i-f.bridge < extra {
					pkts++
				}
			}
			v, dev := f.vendor, f.devValue
			addProfile(&Profile{
				Host:            host,
				Category:        CatAdBeacon,
				Org:             org,
				TargetPackets:   pkts,
				TargetApps:      f.appsPer,
				Sensitive:       true,
				NeedsPhoneState: f.phone,
				Family:          f.family,
				HeavyOnly:       f.heavy,
				Build: func(ctx *BuildCtx) *httpmodel.Packet {
					return vendorSkeleton(v, ctx, host, dev(ctx), ep)
				},
			})
		}
	}

	for i := 0; i < zqapkHosts; i++ {
		host := "zqapk.com"
		if i > 0 {
			host = fmt.Sprintf("u%d.zq%s.com", i, tailAdWord(i))
		}
		addProfile(&Profile{
			Host:            host,
			Category:        CatAdBeacon,
			Org:             fmt.Sprintf("zqapk-org-%d", i),
			TargetPackets:   zqapkPkts / zqapkHosts,
			TargetApps:      2,
			Sensitive:       true,
			NeedsPhoneState: true,
			Family:          "zqapk",
			Build: func(ctx *BuildCtx) *httpmodel.Packet {
				return buildZqapk(ctx, host)
			},
		})
	}

	for ti, tf := range uuidTrackerFamilies() {
		for i := 0; i < tf.hosts; i++ {
			host := fmt.Sprintf("c%02d.%s-audience.net", ti*4+i+1, tailAdWord(ti*5+i+3))
			v := tf.vendor
			addProfile(&Profile{
				Host:          host,
				Category:      CatUUIDTracker,
				Org:           fmt.Sprintf("uuidtrk-org-%d-%d", ti, i),
				TargetPackets: tf.packets / tf.hosts,
				TargetApps:    25,
				Family:        fmt.Sprintf("uuid-tracker-%c", 'a'+int(v)),
				Build: func(ctx *BuildCtx) *httpmodel.Packet {
					return vendorSkeleton(v, ctx, host, ctx.App.InstallUUID, "")
				},
			})
		}
	}

	// Benign tail absorbs the remaining packet budget, spread proportional
	// to each host's app target.
	type tailSlot struct {
		cat   Category
		build func(ctx *BuildCtx, host string) *httpmodel.Packet
		fmt   string
		apps  int
	}
	tailSlots := []tailSlot{
		{CatWebAPI, buildTailAPI, "api.%s-app.jp", 40},
		{CatCDN, buildTailCDN, "img.%s-cdn.net", 30},
		{CatPortal, buildTailNews, "www.%s-news.jp", 22},
		{CatWebAPI, buildTailGame, "gs.%s-games.com", 18},
		{CatWebAPI, buildTailWeather, "api.%s-weather.jp", 45},
		{CatSocial, buildTailSNS, "sns.%s-talk.jp", 28},
	}
	remaining := totalPackets - claimed
	if remaining < 0 {
		remaining = 0
	}
	appWeights := make([]int, benignTailHosts)
	totalWeight := 0
	for i := range appWeights {
		s := tailSlots[i%len(tailSlots)]
		// Deterministic spread of app targets; sized so the benign tail
		// contributes the ~3,900 (app, destination) pairs that bring the
		// per-app mean to Figure 2's 7.9.
		appWeights[i] = 8 + (i*13)%s.apps + s.apps/3
		totalWeight += appWeights[i]
	}
	for i := 0; i < benignTailHosts; i++ {
		s := tailSlots[i%len(tailSlots)]
		host := fmt.Sprintf(s.fmt, tailWord(i)+string(rune('a'+i/len(tailNameWords))))
		build := s.build
		pkts := remaining * appWeights[i] / totalWeight
		addProfile(&Profile{
			Host:          host,
			Category:      s.cat,
			Org:           fmt.Sprintf("tail-org-%d", i/3),
			TargetPackets: pkts,
			TargetApps:    appWeights[i],
			Family:        "benign-tail",
			Build: func(ctx *BuildCtx) *httpmodel.Packet {
				return build(ctx, host)
			},
		})
	}

	// When the requested trace is smaller than the calibrated family
	// budgets (scaled-down runs), shrink every profile proportionally so
	// the configured total is honored.
	if totalPackets > 0 && claimed > totalPackets {
		for _, p := range u.Profiles {
			p.TargetPackets = p.TargetPackets * totalPackets / claimed
		}
	}

	u.orgs = make(map[string]ipaddr.Block)
	for _, p := range u.Profiles {
		if b, ok := alloc.block(p.Org); ok {
			u.orgs[p.Org] = b
		}
	}
	return u
}
