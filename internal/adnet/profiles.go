package adnet

// This file defines the 26 named destinations of the paper's Table II with
// their printed packet/app targets, and request builders mimicking each
// service's 2012-era client library. The identifier each ad module
// transmits follows §III-B and Table III:
//
//	plain Android ID   — ad-maker.info, mydas.mobi, medibaad.com,
//	                     adlantis.jp, mbga.jp, adimg.net, gree.jp
//	MD5(Android ID)    — i-mobile.co.jp, nend.net, admob.com,
//	                     googlesyndication.com, microad.jp, mediba.jp
//	SHA1(Android ID)   — flurry.com
//	MD5(IMEI)          — amoad.com
//	SHA1(IMEI)         — adwhirl.com, mobclix.com
//	IMEI (plain)       — attached by ad-maker/mydas/medibaad/adlantis when
//	                     the app holds READ_PHONE_STATE ("ad-maker.info,
//	                     mydas.mobi, medibaad.com, and adlantis.jp expect
//	                     IMEI and Android ID", §III-B)
//	carrier name       — i-mobile.co.jp on a fraction of requests
//
// doubleclick.net, google-analytics.com, gstatic.com, google.com,
// yahoo.co.jp, ggpht.com, naver.jp, rakuten.co.jp and fc2.com carry no
// device identifiers and populate the normal group.

import (
	"leaksig/internal/httpmodel"
)

// tableIIEntry pairs a Table II row with its builder.
type tableIIEntry struct {
	host            string
	packets, apps   int
	org             string
	category        Category
	sensitive       bool
	needsPhoneState bool
	build           func(ctx *BuildCtx, host string) *httpmodel.Packet
}

func tableIIEntries() []tableIIEntry {
	return []tableIIEntry{
		{"doubleclick.net", 5786, 407, "Google", CatAdModule, false, false, buildDoubleclick},
		{"admob.com", 1299, 401, "Google", CatAdModule, true, false, buildAdmob},
		{"google-analytics.com", 3098, 353, "Google", CatAnalytics, false, false, buildGA},
		{"gstatic.com", 1387, 333, "Google", CatCDN, false, false, buildStatic},
		{"google.com", 3604, 308, "Google", CatWebAPI, false, false, buildGoogleAPI},
		{"yahoo.co.jp", 1756, 287, "Yahoo Japan", CatPortal, false, false, buildYahoo},
		{"ggpht.com", 940, 281, "Google", CatCDN, false, false, buildStatic},
		{"googlesyndication.com", 938, 244, "Google", CatAdModule, true, false, buildGSyndication},
		{"ad-maker.info", 3391, 195, "AdMaker", CatAdModule, true, false, buildAdMaker},
		{"nend.net", 1368, 192, "FAN Communications", CatAdModule, true, false, buildNend},
		{"mydas.mobi", 332, 164, "Millennial Media", CatAdModule, true, false, buildMydas},
		{"amoad.com", 583, 116, "AMoAd", CatAdModule, true, true, buildAmoad},
		{"flurry.com", 335, 119, "Flurry", CatAdModule, true, false, buildFlurry},
		{"microad.jp", 868, 103, "MicroAd", CatAdModule, true, false, buildMicroad},
		{"adwhirl.com", 548, 102, "AdWhirl", CatAdModule, true, true, buildAdwhirl},
		{"i-mobile.co.jp", 3729, 100, "i-mobile", CatAdModule, true, false, buildIMobile},
		{"adlantis.jp", 237, 98, "Adlantis", CatAdModule, true, false, buildAdlantis},
		{"naver.jp", 3390, 82, "Naver Japan", CatPortal, false, false, buildNaver},
		{"adimg.net", 315, 72, "AdImg", CatAdModule, true, false, buildAdimg},
		{"mbga.jp", 1048, 63, "DeNA", CatSocial, true, false, buildMbga},
		{"rakuten.co.jp", 502, 56, "Rakuten", CatWebAPI, false, false, buildRakuten},
		{"fc2.com", 163, 52, "FC2", CatPortal, false, false, buildFC2},
		{"medibaad.com", 1162, 49, "mediba", CatAdModule, true, false, buildMedibaAd},
		{"mediba.jp", 427, 48, "mediba", CatAdModule, true, false, buildMediba},
		{"mobclix.com", 260, 48, "Mobclix", CatAdModule, true, true, buildMobclix},
		{"gree.jp", 228, 45, "GREE", CatSocial, true, false, buildGree},
	}
}

// --- sensitive ad modules ------------------------------------------------

func buildAdMaker(ctx *BuildCtx, host string) *httpmodel.Packet {
	b := httpmodel.Get(host, "/ad/v2/fetch").
		Query("zone", randInt(ctx.Rng, 1, 400)).
		Query("aid", ctx.Device.AndroidID)
	if ctx.App.HasPhoneState {
		b.Query("imei", ctx.Device.IMEI)
	}
	return b.Query("fmt", "json").
		Query("seq", randInt(ctx.Rng, 1, 5000)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildMydas(ctx *BuildCtx, host string) *httpmodel.Packet {
	b := httpmodel.Get(host, "/getAd.php5").
		Query("apid", ctx.App.PubID).
		Query("androidid", ctx.Device.AndroidID)
	if ctx.App.HasPhoneState {
		b.Query("imei", ctx.Device.IMEI)
	}
	return b.Query("mmisdk", "4.6.0-12").
		Query("density", "1.5").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildMedibaAd(ctx *BuildCtx, host string) *httpmodel.Packet {
	pairs := []string{"uid", ctx.Device.AndroidID}
	if ctx.App.HasPhoneState {
		pairs = append(pairs, "imei", ctx.Device.IMEI)
	}
	pairs = append(pairs,
		"pub", ctx.App.PubID,
		"v", "3.1",
		"r", randHex(ctx.Rng, 8),
	)
	return httpmodel.Post(host, "/sdk/req").
		Form(pairs...).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildAdlantis(ctx *BuildCtx, host string) *httpmodel.Packet {
	b := httpmodel.Get(host, "/sp/load").
		Query("aduid", ctx.Device.AndroidID)
	if ctx.App.HasPhoneState {
		b.Query("device", ctx.Device.IMEI)
	}
	return b.Query("pub", ctx.App.PubID).
		Query("t", randDigits(ctx.Rng, 10)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildMbga(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/api/session").
		Query("user", ctx.Device.AndroidID).
		Query("app", ctx.App.PubID).
		Query("t", randDigits(ctx.Rng, 10)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildAdimg(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/img/banner").
		Query("aid", ctx.Device.AndroidID).
		Query("size", "320x50").
		Query("r", randHex(ctx.Rng, 8)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildGree(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/api/v1/me").
		Query("uid", ctx.Device.AndroidID).
		Query("app_id", ctx.App.PubID).
		Query("format", "json").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildIMobile(ctx *BuildCtx, host string) *httpmodel.Packet {
	b := httpmodel.Get(host, "/ad/p/").
		Query("pid", ctx.App.PubID).
		Query("uid", md5AID(ctx.Device)).
		Query("os", "android")
	if ctx.Rng.Float64() < 0.40 {
		b.Query("carrier", ctx.Device.Carrier.Name)
	}
	return b.Query("w", "320").Query("h", "50").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildNend(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/na.php").
		Query("apikey", ctx.App.PubID).
		Query("uid", md5AID(ctx.Device)).
		Query("sdk", "1.2.1").
		Query("rnd", randDigits(ctx.Rng, 8)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildAdmob(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/mads/gma").
		Query("preqs", randInt(ctx.Rng, 0, 30)).
		Query("u_w", "320").
		Query("u_h", "50").
		Query("udid", md5AID(ctx.Device)).
		Query("client", "ca-mb-app-pub-"+ctx.App.PubID).
		Query("format", "320x50_mb").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildGSyndication(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/pagead/ads").
		Query("client", "ca-app-pub-"+ctx.App.PubID).
		Query("udid", md5AID(ctx.Device)).
		Query("format", "320x50_mb").
		Query("output", "html").
		Query("sz", "320x50").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildMicroad(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/ad/sp").
		Query("spot", ctx.App.PubID).
		Query("u", md5AID(ctx.Device)).
		Query("t", randDigits(ctx.Rng, 10)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildMediba(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/sdk/ad").
		Query("sid", ctx.App.PubID).
		Query("muid", md5AID(ctx.Device)).
		Query("ver", "2.0").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildFlurry(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Post(host, "/aap.do").
		Form(
			"apiKey", ctx.App.PubID,
			"uid", sha1AID(ctx.Device),
			"ts", randDigits(ctx.Rng, 13),
			"ve", "2.2",
		).
		UserAgent(ctx.Device.UserAgent()).Build()
}

// buildAmoad transmits MD5(IMEI) when permitted; otherwise the SDK falls
// back to a permissionless config fetch (a benign packet on an ad host).
func buildAmoad(ctx *BuildCtx, host string) *httpmodel.Packet {
	b := httpmodel.Get(host, "/n/v1").
		Query("sid", ctx.App.PubID)
	if ctx.App.HasPhoneState {
		b.Query("did", md5IMEI(ctx.Device))
	} else {
		b.Query("nid", randHex(ctx.Rng, 16))
	}
	return b.Query("lang", "ja").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildAdwhirl(ctx *BuildCtx, host string) *httpmodel.Packet {
	b := httpmodel.Get(host, "/getInfo.php").
		Query("appid", ctx.App.PubID)
	if ctx.App.HasPhoneState {
		b.Query("uuid", sha1IMEI(ctx.Device))
	}
	return b.Query("client", "2").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildMobclix(ctx *BuildCtx, host string) *httpmodel.Packet {
	pairs := []string{"p", "android", "a", ctx.App.PubID}
	if ctx.App.HasPhoneState {
		pairs = append(pairs, "d", sha1IMEI(ctx.Device))
	}
	pairs = append(pairs, "v", "3.2.0")
	return httpmodel.Post(host, "/vc/1.0").
		Form(pairs...).
		UserAgent(ctx.Device.UserAgent()).Build()
}

// --- benign named destinations -------------------------------------------

// buildDoubleclick emits cookie-correlated impressions with no device IDs.
// It deliberately shares template fragments (pagead paths, output/sz
// parameters) with the Google in-app ad modules: clusters that degrade to
// template-only tokens will false-positive against this traffic, the
// behaviour Figure 4's FP curve shows growing with N.
func buildDoubleclick(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/pagead/adview").
		Query("correlator", randDigits(ctx.Rng, 13)).
		Query("output", "html").
		Query("sz", "320x50").
		Query("slotname", ctx.App.PubID).
		Cookie("id=" + randHex(ctx.Rng, 16)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildGA(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/__utm.gif").
		Query("utmwv", "4.8.1ma").
		Query("utmn", randDigits(ctx.Rng, 10)).
		Query("utmhn", ctx.App.Package).
		Query("utmcs", "UTF-8").
		Query("utmac", "MO-"+randDigits(ctx.Rng, 8)+"-1").
		UserAgent(ctx.Device.UserAgent()).Build()
}

var staticAssets = []string{"logo", "sprite", "banner", "icon", "btn", "bg", "header", "thumb"}

func buildStatic(ctx *BuildCtx, host string) *httpmodel.Packet {
	name := staticAssets[ctx.Rng.Intn(len(staticAssets))]
	return httpmodel.Get(host, "/images/"+name+randInt(ctx.Rng, 1, 99)+".png").
		Header("Accept", "image/*").
		UserAgent(ctx.Device.UserAgent()).Build()
}

var searchWords = []string{
	"tenki", "news", "densha", "recipe", "eiga", "game", "hoshii",
	"sale", "matome", "anime", "soccer", "keiba",
}

func buildGoogleAPI(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/complete/search").
		Query("q", searchWords[ctx.Rng.Intn(len(searchWords))]).
		Query("client", "android").
		Query("hl", "ja").
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildYahoo(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/search").
		Query("p", searchWords[ctx.Rng.Intn(len(searchWords))]).
		Query("ei", "UTF-8").
		Query("fr", "applp2").
		UserAgent(ctx.Device.UserAgent()).Build()
}

var naverSections = []string{"matome", "news", "ranking", "topic", "photo"}

func buildNaver(ctx *BuildCtx, host string) *httpmodel.Packet {
	s := naverSections[ctx.Rng.Intn(len(naverSections))]
	return httpmodel.Get(host, "/"+s+"/list").
		Query("page", randInt(ctx.Rng, 1, 40)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildRakuten(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/api/item/search").
		Query("keyword", searchWords[ctx.Rng.Intn(len(searchWords))]).
		Query("format", "json").
		Query("page", randInt(ctx.Rng, 1, 20)).
		UserAgent(ctx.Device.UserAgent()).Build()
}

func buildFC2(ctx *BuildCtx, host string) *httpmodel.Packet {
	return httpmodel.Get(host, "/blog/entry-"+randInt(ctx.Rng, 100, 99999)+".html").
		UserAgent(ctx.Device.UserAgent()).Build()
}
