package adnet

import (
	"math/rand"
	"strings"
	"testing"

	"leaksig/internal/android"
	"leaksig/internal/sensitive"
)

func testCtx(phoneState bool) *BuildCtx {
	rng := rand.New(rand.NewSource(1))
	return &BuildCtx{
		Rng:    rng,
		Device: android.NewDevice(rng, android.CarrierDocomo),
		App: AppInfo{
			Package:       "com.example.app",
			HasPhoneState: phoneState,
			InstallUUID:   "0123456789abcdef0123456789abcdef",
			PubID:         "pub42",
		},
	}
}

func TestUniverseProfileInvariants(t *testing.T) {
	u := NewUniverse(107859)
	if len(u.Profiles) < 300 {
		t.Fatalf("profiles = %d", len(u.Profiles))
	}
	hosts := make(map[string]bool)
	totalPkts := 0
	for _, p := range u.Profiles {
		if p.Host == "" {
			t.Fatal("profile without host")
		}
		if hosts[p.Host] {
			t.Fatalf("duplicate host %s", p.Host)
		}
		hosts[p.Host] = true
		if p.IP == 0 {
			t.Errorf("%s has no IP", p.Host)
		}
		if p.Port != 80 {
			t.Errorf("%s port = %d", p.Host, p.Port)
		}
		if p.Org == "" {
			t.Errorf("%s has no org", p.Host)
		}
		if p.Build == nil {
			t.Fatalf("%s has no builder", p.Host)
		}
		if p.TargetApps <= 0 {
			t.Errorf("%s target apps = %d", p.Host, p.TargetApps)
		}
		totalPkts += p.TargetPackets
	}
	if totalPkts < 100000 || totalPkts > 110000 {
		t.Errorf("total target packets = %d", totalPkts)
	}
}

func TestUniverseScalesDown(t *testing.T) {
	u := NewUniverse(10000)
	total := 0
	for _, p := range u.Profiles {
		total += p.TargetPackets
	}
	if total > 10000 {
		t.Errorf("scaled universe claims %d packets, budget 10000", total)
	}
	if total < 8000 {
		t.Errorf("scaled universe claims only %d packets", total)
	}
}

func TestTableIITargetsPreserved(t *testing.T) {
	u := NewUniverse(107859)
	byHost := make(map[string]*Profile)
	for _, p := range u.Profiles {
		byHost[p.Host] = p
	}
	for _, e := range tableIIEntries() {
		p, ok := byHost[e.host]
		if !ok {
			t.Fatalf("Table II host %s missing", e.host)
		}
		if p.TargetPackets != e.packets || p.TargetApps != e.apps {
			t.Errorf("%s targets = %d/%d, want %d/%d",
				e.host, p.TargetPackets, p.TargetApps, e.packets, e.apps)
		}
	}
}

func TestOrgAdjacency(t *testing.T) {
	// Hosts of one organization must share a /16; different organizations
	// must not collide — the property the destination IP distance exploits.
	u := NewUniverse(107859)
	blocks := u.OrgBlocks()
	if len(blocks) < 50 {
		t.Fatalf("orgs = %d", len(blocks))
	}
	for _, p := range u.Profiles {
		blk, ok := blocks[p.Org]
		if !ok {
			t.Fatalf("org %s missing from registry", p.Org)
		}
		if !blk.Contains(p.IP) {
			t.Errorf("%s IP %s outside org block %s", p.Host, p.IP, blk)
		}
	}
	// Google hosts (6 Table II rows) share one block.
	var google *Profile
	for _, p := range u.Profiles {
		if p.Host == "google.com" {
			google = p
		}
	}
	for _, p := range u.Profiles {
		if p.Org == "Google" && blocks["Google"] != blocks[google.Org] {
			t.Error("google org block inconsistent")
		}
	}
}

func TestSensitiveModulesEmitExpectedKinds(t *testing.T) {
	u := NewUniverse(107859)
	ctx := testCtx(true)
	oracle := sensitive.NewOracle(ctx.Device)
	wantKinds := map[string]sensitive.Kind{
		"ad-maker.info":         sensitive.KindAndroidID,
		"mydas.mobi":            sensitive.KindAndroidID,
		"admob.com":             sensitive.KindAndroidIDMD5,
		"googlesyndication.com": sensitive.KindAndroidIDMD5,
		"i-mobile.co.jp":        sensitive.KindAndroidIDMD5,
		"nend.net":              sensitive.KindAndroidIDMD5,
		"flurry.com":            sensitive.KindAndroidIDSHA1,
		"amoad.com":             sensitive.KindIMEIMD5,
		"adwhirl.com":           sensitive.KindIMEISHA1,
		"mobclix.com":           sensitive.KindIMEISHA1,
		"zqapk.com":             sensitive.KindIMSI,
	}
	byHost := make(map[string]*Profile)
	for _, p := range u.Profiles {
		byHost[p.Host] = p
	}
	for host, want := range wantKinds {
		p, ok := byHost[host]
		if !ok {
			t.Fatalf("host %s missing", host)
		}
		pkt := p.Build(ctx)
		kinds := oracle.Scan(pkt)
		found := false
		for _, k := range kinds {
			if k == want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s emitted %v, want to include %v\npacket: %s", host, kinds, want, pkt.RequestLine())
		}
	}
}

func TestIMEIModulesRespectPermission(t *testing.T) {
	u := NewUniverse(107859)
	noPhone := testCtx(false)
	oracle := sensitive.NewOracle(noPhone.Device)
	imeiKinds := map[sensitive.Kind]bool{
		sensitive.KindIMEI: true, sensitive.KindIMEIMD5: true,
		sensitive.KindIMEISHA1: true, sensitive.KindIMSI: true,
		sensitive.KindSIMSerial: true,
	}
	for _, host := range []string{"ad-maker.info", "mydas.mobi", "medibaad.com", "adlantis.jp", "amoad.com", "adwhirl.com", "mobclix.com"} {
		var p *Profile
		for _, q := range u.Profiles {
			if q.Host == host {
				p = q
			}
		}
		pkt := p.Build(noPhone)
		for _, k := range oracle.Scan(pkt) {
			if imeiKinds[k] {
				t.Errorf("%s emitted %v without READ_PHONE_STATE", host, k)
			}
		}
	}
}

func TestBenignBuildersNeverLeak(t *testing.T) {
	u := NewUniverse(107859)
	ctx := testCtx(true)
	oracle := sensitive.NewOracle(ctx.Device)
	for _, p := range u.Profiles {
		if p.Sensitive {
			continue
		}
		for i := 0; i < 5; i++ {
			pkt := p.Build(ctx)
			if kinds := oracle.Scan(pkt); len(kinds) > 0 {
				t.Fatalf("benign profile %s (%v) leaked %v: %s",
					p.Host, p.Category, kinds, pkt.RequestLine())
			}
		}
	}
}

func TestAllBuildersProduceValidPackets(t *testing.T) {
	u := NewUniverse(107859)
	for _, phone := range []bool{true, false} {
		ctx := testCtx(phone)
		for _, p := range u.Profiles {
			pkt := p.Build(ctx)
			pkt.Host = p.Host // builders set Host; keep consistent
			if err := pkt.Validate(); err != nil {
				t.Fatalf("profile %s (phone=%v): %v", p.Host, phone, err)
			}
			if pkt.Host != p.Host {
				t.Fatalf("profile %s built packet for host %s", p.Host, pkt.Host)
			}
		}
	}
}

func TestVendorSkeletonsShareSyntaxWithinVendor(t *testing.T) {
	// Beacon hosts of one vendor must share their path; UUID trackers of
	// the same vendor must share it too (that is what makes skeleton-only
	// signatures false-positive against them).
	u := NewUniverse(107859)
	ctx := testCtx(true)
	pathOf := func(p *Profile) string {
		pkt := p.Build(ctx)
		path := pkt.Path
		if i := strings.IndexByte(path, '?'); i >= 0 {
			path = path[:i]
		}
		return path
	}
	vendorPaths := map[string]string{}
	for _, p := range u.Profiles {
		switch p.Family {
		case "md5-beacon", "imei-beacon":
			vendorPaths["a:"+pathOf(p)] = p.Family
		case "sha1-beacon", "imeimd5-beacon":
			vendorPaths["b:"+pathOf(p)] = p.Family
		case "aid-beacon", "imeisha1-beacon":
			vendorPaths["c:"+pathOf(p)] = p.Family
		}
	}
	counts := map[byte]int{}
	for k := range vendorPaths {
		counts[k[0]]++
	}
	for v, n := range counts {
		if n != 1 {
			t.Errorf("vendor %c has %d distinct paths, want 1", v, n)
		}
	}
	// UUID trackers reuse those paths.
	for _, p := range u.ByCategory(CatUUIDTracker) {
		path := pathOf(p)
		found := false
		for k := range vendorPaths {
			if strings.HasSuffix(k, ":"+path) {
				found = true
			}
		}
		if !found {
			t.Errorf("uuid tracker %s path %s matches no vendor skeleton", p.Host, path)
		}
	}
}

func TestBridgeHostsShareOrg(t *testing.T) {
	u := NewUniverse(107859)
	orgsByVendorOrg := map[string][]string{}
	for _, p := range u.Profiles {
		if strings.HasPrefix(p.Org, "vendor-") {
			orgsByVendorOrg[p.Org] = append(orgsByVendorOrg[p.Org], p.Family)
		}
	}
	if len(orgsByVendorOrg) != 3 {
		t.Fatalf("holding orgs = %d, want 3", len(orgsByVendorOrg))
	}
	for org, families := range orgsByVendorOrg {
		distinct := map[string]bool{}
		for _, f := range families {
			distinct[f] = true
		}
		if len(distinct) < 2 {
			t.Errorf("holding org %s hosts only families %v; bridge needs 2 kinds", org, families)
		}
	}
}

func TestHostTokenStable(t *testing.T) {
	a := hostToken("d01.adpulse-trk.info")
	b := hostToken("d01.adpulse-trk.info")
	c := hostToken("d02.adpulse-trk.info")
	if a != b {
		t.Error("hostToken not deterministic")
	}
	if a == c {
		t.Error("hostToken collides on sibling hosts")
	}
	if len(a) != 6 {
		t.Errorf("hostToken length = %d", len(a))
	}
}

func TestCategoryString(t *testing.T) {
	names := map[Category]string{
		CatAdModule: "ad-module", CatAdBeacon: "ad-beacon",
		CatUUIDTracker: "uuid-tracker", CatAnalytics: "analytics",
		CatCDN: "cdn", CatWebAPI: "web-api", CatPortal: "portal",
		CatSocial: "social", Category(99): "unknown",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestByCategoryAndSensitiveProfiles(t *testing.T) {
	u := NewUniverse(107859)
	sens := u.SensitiveProfiles()
	if len(sens) < 100 {
		t.Errorf("sensitive profiles = %d", len(sens))
	}
	for _, p := range sens {
		if !p.Sensitive {
			t.Fatal("non-sensitive profile returned")
		}
	}
	cdns := u.ByCategory(CatCDN)
	if len(cdns) == 0 {
		t.Error("no CDN profiles")
	}
	for _, p := range cdns {
		if p.Category != CatCDN {
			t.Fatal("wrong category returned")
		}
	}
}

func TestIPAllocatorSeparatesOrgs(t *testing.T) {
	a := newIPAllocator()
	ip1 := a.addr("org-one")
	ip2 := a.addr("org-one")
	ip3 := a.addr("org-two")
	b1, _ := a.block("org-one")
	b2, _ := a.block("org-two")
	if !b1.Contains(ip1) || !b1.Contains(ip2) {
		t.Error("same-org addresses outside block")
	}
	if b1.Overlaps(b2) {
		t.Error("org blocks overlap")
	}
	if b2.Contains(ip1) || b1.Contains(ip3) {
		t.Error("cross-org containment")
	}
	if ip1 == ip2 {
		t.Error("duplicate address within org")
	}
}
