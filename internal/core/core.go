// Package core wires the paper's method end to end (§IV, Figure 3a):
// compute pairwise HTTP packet distances, cluster hierarchically, cut the
// dendrogram, and generate one conjunction signature per cluster. It is the
// programmatic API the command-line tools, the examples, and the evaluation
// harness all share.
package core

import (
	"leaksig/internal/cluster"
	"leaksig/internal/detect"
	"leaksig/internal/distance"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// Config parameterizes the pipeline. The zero value reproduces the paper's
// configuration (normalized packet distance, group-average linkage) with
// this repository's default cut and token settings.
type Config struct {
	// Distance configures the packet metric (§IV-B/C).
	Distance distance.Config

	// Linkage selects the cluster criterion; the paper uses group average
	// (§IV-D), the default.
	Linkage cluster.Linkage

	// CutFraction positions the flat-clustering threshold as a fraction of
	// the metric's maximum value. Defaults to 0.22.
	CutFraction float64

	// Signature configures token extraction and filtering (§IV-E).
	Signature signature.Options
}

func (c Config) withDefaults() Config {
	if c.CutFraction == 0 {
		c.CutFraction = 0.22
	}
	if c.Signature.MinClusterSize == 0 {
		// Singleton clusters yield signatures frozen to one packet's
		// volatile parameters; skipping them is the repository default
		// (set MinClusterSize to 1 to reproduce the paper's every-cluster
		// procedure — the ablation bench compares both).
		c.Signature.MinClusterSize = 2
	}
	return c
}

// Pipeline executes the clustering and signature-generation stages.
type Pipeline struct {
	cfg    Config
	metric *distance.Metric
}

// NewPipeline builds a pipeline from cfg.
func NewPipeline(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	return &Pipeline{cfg: cfg, metric: distance.New(cfg.Distance)}
}

// Metric exposes the configured packet metric.
func (pl *Pipeline) Metric() *distance.Metric { return pl.metric }

// Threshold returns the absolute dendrogram cut height.
func (pl *Pipeline) Threshold() float64 {
	return pl.cfg.CutFraction * pl.metric.MaxValue()
}

// Cluster computes the full distance matrix over the packets, agglomerates,
// and returns the dendrogram together with the flat clusters at the
// configured threshold (as packet groups).
func (pl *Pipeline) Cluster(packets []*httpmodel.Packet) (*cluster.Dendrogram, [][]*httpmodel.Packet) {
	mx := distance.NewMatrix(pl.metric, packets)
	dend := cluster.Agglomerate(mx, pl.cfg.Linkage)
	idxClusters := dend.CutDistance(pl.Threshold())
	groups := make([][]*httpmodel.Packet, len(idxClusters))
	for i, idxs := range idxClusters {
		g := make([]*httpmodel.Packet, len(idxs))
		for j, k := range idxs {
			g[j] = packets[k]
		}
		groups[i] = g
	}
	return dend, groups
}

// GenerateSignatures runs Cluster followed by signature generation and
// stamps the training size with the sample count.
func (pl *Pipeline) GenerateSignatures(packets []*httpmodel.Packet) *signature.Set {
	_, groups := pl.Cluster(packets)
	set := signature.Generate(groups, pl.cfg.Signature)
	set.TrainingSize = len(packets)
	return set
}

// NewDetector compiles a signature set into a matching engine.
func NewDetector(set *signature.Set) *detect.Engine {
	return detect.NewEngine(set)
}
