package core

import (
	"math/rand"
	"strings"
	"testing"

	"leaksig/internal/cluster"
	"leaksig/internal/distance"
	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
	"leaksig/internal/signature"
)

// moduleTraffic fabricates n packets of a synthetic ad module: fixed host,
// IP and URL template, one embedded identifier value, and volatile params.
func moduleTraffic(rng *rand.Rand, host, ip, tmplKey, value string, n int) []*httpmodel.Packet {
	out := make([]*httpmodel.Packet, n)
	for i := range out {
		out[i] = httpmodel.Get(host, "/fetch").
			Query("zone", itoa(rng.Intn(500))).
			Query(tmplKey, value).
			Query("seq", itoa(rng.Intn(100000))).
			Dest(ipaddr.MustParse(ip), 80).
			Build()
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

func TestPipelineClustersByModule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := moduleTraffic(rng, "alpha-ads.example", "23.16.0.10", "udid", "f3a9c1d200b14e67", 8)
	b := moduleTraffic(rng, "beta-track.jp", "64.17.0.20", "device", "353918051234563", 8)
	all := append(append([]*httpmodel.Packet{}, a...), b...)

	pl := NewPipeline(Config{})
	_, groups := pl.Cluster(all)
	// The two modules must separate into (at least) two clusters, and no
	// cluster may mix hosts.
	if len(groups) < 2 {
		t.Fatalf("clusters = %d, want >= 2", len(groups))
	}
	for _, g := range groups {
		host := g[0].Host
		for _, p := range g[1:] {
			if p.Host != host {
				t.Fatalf("cluster mixes %s and %s", host, p.Host)
			}
		}
	}
}

func TestPipelineSignaturesCarryIdentifier(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pkts := moduleTraffic(rng, "alpha-ads.example", "23.16.0.10", "udid", "f3a9c1d200b14e67", 10)
	pl := NewPipeline(Config{})
	set := pl.GenerateSignatures(pkts)
	if set.Len() == 0 {
		t.Fatal("no signatures")
	}
	if set.TrainingSize != 10 {
		t.Errorf("TrainingSize = %d", set.TrainingSize)
	}
	found := false
	for _, s := range set.Signatures {
		for _, tok := range s.Tokens {
			if strings.Contains(tok, "f3a9c1d200b14e67") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("identifier token missing: %v", set.Signatures)
	}
}

func TestPipelineDetectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := moduleTraffic(rng, "alpha-ads.example", "23.16.0.10", "udid", "f3a9c1d200b14e67", 6)
	fresh := moduleTraffic(rng, "alpha-ads.example", "23.16.0.10", "udid", "f3a9c1d200b14e67", 6)
	benign := moduleTraffic(rng, "api.other.jp", "199.18.0.4", "sid", "a1b2c3d4e5f60718", 6)

	set := NewPipeline(Config{}).GenerateSignatures(train)
	eng := NewDetector(set)
	for _, p := range fresh {
		if !eng.Matches(p) {
			t.Errorf("unseen same-module packet missed: %s", p.RequestLine())
		}
	}
	for _, p := range benign {
		if eng.Matches(p) {
			t.Errorf("benign packet matched: %s", p.RequestLine())
		}
	}
}

func TestThresholdScalesWithMetric(t *testing.T) {
	def := NewPipeline(Config{})
	if got, want := def.Threshold(), 0.22*6.0; got != want {
		t.Errorf("default threshold = %v, want %v", got, want)
	}
	contentOnly := NewPipeline(Config{Distance: distance.Config{DestinationWeight: -1}})
	if got, want := contentOnly.Threshold(), 0.22*3.0; got != want {
		t.Errorf("content-only threshold = %v, want %v", got, want)
	}
	custom := NewPipeline(Config{CutFraction: 0.5})
	if got := custom.Threshold(); got != 3.0 {
		t.Errorf("custom threshold = %v", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.CutFraction != 0.22 {
		t.Errorf("CutFraction default = %v", cfg.CutFraction)
	}
	if cfg.Signature.MinClusterSize != 2 {
		t.Errorf("MinClusterSize default = %d", cfg.Signature.MinClusterSize)
	}
	// Explicit values survive.
	cfg = Config{CutFraction: 0.4, Signature: signature.Options{MinClusterSize: 1}}.withDefaults()
	if cfg.CutFraction != 0.4 || cfg.Signature.MinClusterSize != 1 {
		t.Errorf("explicit config overridden: %+v", cfg)
	}
}

func TestLinkageConfigRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := moduleTraffic(rng, "alpha-ads.example", "23.16.0.10", "udid", "f3a9c1d200b14e67", 5)
	b := moduleTraffic(rng, "beta-track.jp", "64.17.0.20", "device", "353918051234563", 5)
	all := append(append([]*httpmodel.Packet{}, a...), b...)
	for _, l := range []cluster.Linkage{cluster.GroupAverage, cluster.Single, cluster.Complete} {
		dend, groups := NewPipeline(Config{Linkage: l}).Cluster(all)
		if err := dend.Validate(); err != nil {
			t.Errorf("linkage %v: %v", l, err)
		}
		if len(groups) == 0 {
			t.Errorf("linkage %v: no clusters", l)
		}
		total := 0
		for _, g := range groups {
			total += len(g)
		}
		if total != len(all) {
			t.Errorf("linkage %v: clusters cover %d of %d packets", l, total, len(all))
		}
	}
}

func TestEmptyAndSingletonInput(t *testing.T) {
	pl := NewPipeline(Config{})
	set := pl.GenerateSignatures(nil)
	if set.Len() != 0 || set.TrainingSize != 0 {
		t.Errorf("empty input produced %+v", set)
	}
	one := moduleTraffic(rand.New(rand.NewSource(5)), "a.example", "23.16.0.9", "u", "deadbeefdeadbeef", 1)
	set = pl.GenerateSignatures(one)
	// Default MinClusterSize=2 skips the singleton cluster.
	if set.Len() != 0 {
		t.Errorf("singleton produced %d signatures under default config", set.Len())
	}
	everyCluster := NewPipeline(Config{Signature: signature.Options{MinClusterSize: 1}})
	set = everyCluster.GenerateSignatures(one)
	if set.Len() != 1 {
		t.Errorf("paper-mode singleton produced %d signatures", set.Len())
	}
}
