package leaksig

// Cross-cutting property-based tests (testing/quick) over the core data
// structures and the invariants the pipeline depends on: capture
// serialization totality, conjunction-matching semantics, distance-matrix
// symmetry, dendrogram validity over arbitrary metric inputs, and the
// paper's rate equations.

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"leaksig/internal/capture"
	"leaksig/internal/cluster"
	"leaksig/internal/detect"
	"leaksig/internal/distance"
	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
	"leaksig/internal/signature"
)

// arbitraryPacket derives a structurally valid packet from fuzz inputs.
func arbitraryPacket(seed int64) *httpmodel.Packet {
	rng := rand.New(rand.NewSource(seed))
	hosts := []string{"a.example", "ads.example.jp", "x-cdn.net", "t1.track.asia"}
	words := []string{"zone", "udid", "fmt", "page", "sid", "q"}
	b := httpmodel.Get(hosts[rng.Intn(len(hosts))], "/p"+string(rune('a'+rng.Intn(26))))
	if rng.Intn(2) == 0 {
		b = httpmodel.Post(hosts[rng.Intn(len(hosts))], "/q"+string(rune('a'+rng.Intn(26))))
	}
	for i := 0; i < rng.Intn(4); i++ {
		b.Query(words[rng.Intn(len(words))], randToken(rng))
	}
	if rng.Intn(3) == 0 {
		b.Cookie("s=" + randToken(rng))
	}
	p := b.Dest(ipaddr.Addr(rng.Uint32()), uint16(rng.Intn(65535)+1)).
		ID(rng.Int63n(1 << 40)).App("com.app" + randToken(rng)).Time(rng.Int63n(1 << 31)).
		Build()
	if p.Method == "POST" && rng.Intn(2) == 0 {
		p.Body = []byte("k=" + randToken(rng))
	}
	return p
}

func randToken(rng *rand.Rand) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz0123456789"
	n := 1 + rng.Intn(12)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alpha[rng.Intn(len(alpha))])
	}
	return sb.String()
}

func TestPropertyCaptureRoundTripsAnyPacket(t *testing.T) {
	f := func(seed int64, binary bool) bool {
		p := arbitraryPacket(seed)
		if p.Validate() != nil {
			return true // only valid packets enter captures
		}
		set := capture.New([]*httpmodel.Packet{p})
		var buf bytes.Buffer
		var got *capture.Set
		var err error
		if binary {
			if err = set.WriteBinary(&buf); err != nil {
				return false
			}
			got, err = capture.ReadBinary(&buf)
		} else {
			if err = set.WriteJSONL(&buf); err != nil {
				return false
			}
			got, err = capture.ReadJSONL(&buf)
		}
		if err != nil || got.Len() != 1 {
			return false
		}
		q := got.Packets[0]
		return q.ID == p.ID && q.App == p.App && q.Time == p.Time &&
			q.Host == p.Host && q.DstIP == p.DstIP && q.DstPort == p.DstPort &&
			q.RequestLine() == p.RequestLine() &&
			q.Cookie() == p.Cookie() && bytes.Equal(q.Body, p.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyConjunctionSemantics(t *testing.T) {
	// A packet matches a signature iff every token occurs inside one of
	// its content fields (request line, cookie, body — tokens never match
	// across field boundaries) and the host constraint holds — regardless
	// of engine internals.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := arbitraryPacket(seed)
		fields := p.ContentFields()
		// Build a signature from random substrings of single content
		// fields (present) and random tokens (absent).
		var tokens []string
		expect := true
		for i := 0; i < 1+rng.Intn(3); i++ {
			field := string(fields[rng.Intn(len(fields))])
			if rng.Intn(2) == 0 && len(field) > 4 {
				start := rng.Intn(len(field) - 2)
				end := start + 1 + rng.Intn(len(field)-start-1)
				tokens = append(tokens, field[start:end])
			} else {
				tok := "\x01absent-" + randToken(rng)
				tokens = append(tokens, tok)
				expect = false
			}
		}
		sig := &signature.Signature{ID: 0, Tokens: tokens}
		eng := detect.NewEngine(&signature.Set{Signatures: []*signature.Signature{sig}})
		return eng.Matches(p) == expect
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDistanceMatrixSymmetricNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		ps := make([]*httpmodel.Packet, n)
		for i := range ps {
			ps[i] = arbitraryPacket(seed + int64(i)*977)
		}
		mx := distance.NewMatrix(distance.Default(), ps)
		for i := 0; i < n; i++ {
			if mx.At(i, i) != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				d := mx.At(i, j)
				if d < 0 || d != mx.At(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDendrogramValidOverArbitraryPackets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		ps := make([]*httpmodel.Packet, n)
		for i := range ps {
			ps[i] = arbitraryPacket(seed ^ int64(i)*131071)
		}
		mx := distance.NewMatrix(distance.Default(), ps)
		dend := cluster.Agglomerate(mx, cluster.GroupAverage)
		if dend.Validate() != nil {
			return false
		}
		// Any flat cut partitions the leaves exactly.
		for _, k := range []int{1, 2, n} {
			total := 0
			seen := make(map[int]bool)
			for _, c := range dend.CutCount(k) {
				for _, leaf := range c {
					if seen[leaf] {
						return false
					}
					seen[leaf] = true
					total++
				}
			}
			if total != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyEvaluationRatesConsistent(t *testing.T) {
	// For any labelling and any verdicts: TP+FN = 1 when denominators are
	// positive, and all counts add up.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		var ds capture.Set
		labels := make([]bool, n)
		sensCount := 0
		for i := 0; i < n; i++ {
			p := arbitraryPacket(seed + int64(i))
			ds.Append(p)
			labels[i] = rng.Intn(3) == 0
			if labels[i] {
				sensCount++
			}
		}
		train := 0
		if sensCount > 1 {
			train = rng.Intn(sensCount - 1)
		}
		// A matcher with arbitrary behaviour.
		m := substringMatcherP("e")
		res := detect.EvaluateMatcher(m, &ds, labels, train)
		if res.SensitiveTotal != sensCount || res.NormalTotal != n-sensCount {
			return false
		}
		if res.DetectedSensitive+res.UndetectedSensitive != res.SensitiveTotal {
			return false
		}
		if res.SensitiveTotal-train > 0 {
			sum := res.TruePositiveRate + res.FalseNegativeRate
			if sum < 0.999999 || sum > 1.000001 {
				return false
			}
		}
		return res.FalsePositiveRate >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// substringMatcherP matches packets whose content contains the substring.
type substringMatcherP string

func (m substringMatcherP) Matches(p *httpmodel.Packet) bool {
	return bytes.Contains(p.Content(), []byte(m))
}

func TestPropertySignatureSetSerializationStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		set := &signature.Set{Version: rng.Int63()}
		for i := 0; i < 1+rng.Intn(5); i++ {
			var toks []string
			for j := 0; j < 1+rng.Intn(4); j++ {
				toks = append(toks, randToken(rng))
			}
			set.Signatures = append(set.Signatures, &signature.Signature{
				ID: i, Tokens: toks, ClusterSize: 1 + rng.Intn(9),
			})
		}
		var buf bytes.Buffer
		if set.WriteJSON(&buf) != nil {
			return false
		}
		got, err := signature.ReadJSON(&buf)
		if err != nil || got.Len() != set.Len() || got.Version != set.Version {
			return false
		}
		for i := range set.Signatures {
			if got.Signatures[i].Key() != set.Signatures[i].Key() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
