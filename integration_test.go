package leaksig

// End-to-end integration test across the file-based workflow the command
// line tools implement: generate a capture to disk, reload it, rebuild the
// ground truth from the device file, learn signatures, persist them, reload
// them, and verify detection — every serialization boundary crossed once.

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"leaksig/internal/android"
	"leaksig/internal/capture"
	"leaksig/internal/collector"
	"leaksig/internal/core"
	"leaksig/internal/detect"
	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	"leaksig/internal/sensitive"
	"leaksig/internal/siggen"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
	"leaksig/internal/trafficgen"
)

func TestFileBasedPipeline(t *testing.T) {
	dir := t.TempDir()
	capPath := filepath.Join(dir, "capture.jsonl")
	devPath := filepath.Join(dir, "device.json")
	sigPath := filepath.Join(dir, "signatures.json")

	// --- leakgen ---
	ds := trafficgen.Generate(trafficgen.Config{Seed: 21, NumApps: 120, TotalPackets: 10000})
	if err := ds.Capture.SaveJSONL(capPath); err != nil {
		t.Fatal(err)
	}
	devRaw, err := json.Marshal(ds.Device)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(devPath, devRaw, 0o644); err != nil {
		t.Fatal(err)
	}

	// --- leakcluster: reload everything from disk ---
	set, err := capture.LoadJSONL(capPath)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != ds.Capture.Len() {
		t.Fatalf("capture round trip lost packets: %d vs %d", set.Len(), ds.Capture.Len())
	}
	var dev android.Device
	if err := json.Unmarshal(mustRead(t, devPath), &dev); err != nil {
		t.Fatal(err)
	}
	oracle := sensitive.NewOracle(&dev)
	suspicious := set.Filter(oracle.IsSensitive)
	if suspicious.Len() == 0 {
		t.Fatal("no suspicious packets after reload")
	}
	sample := suspicious.Sample(rand.New(rand.NewSource(5)), 120)
	sigs := core.NewPipeline(core.Config{}).GenerateSignatures(sample.Packets)
	if sigs.Len() == 0 {
		t.Fatal("no signatures")
	}
	sf, err := os.Create(sigPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sigs.WriteJSON(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	// --- leakdetect: reload signatures, score ---
	sf2, err := os.Open(sigPath)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := signature.ReadJSON(sf2)
	sf2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != sigs.Len() {
		t.Fatalf("signature round trip: %d vs %d", reloaded.Len(), sigs.Len())
	}
	labels := make([]bool, set.Len())
	for i, p := range set.Packets {
		labels[i] = oracle.IsSensitive(p)
	}
	res := detect.Evaluate(detect.NewEngine(reloaded), set, labels, sample.Len())
	if res.TruePositiveRate < 0.4 {
		t.Errorf("end-to-end TP = %.2f, implausibly low", res.TruePositiveRate)
	}
	if res.FalsePositiveRate > 0.1 {
		t.Errorf("end-to-end FP = %.3f, implausibly high", res.FalsePositiveRate)
	}
}

func TestCollectorFeedsPipeline(t *testing.T) {
	// Devices upload raw wire requests; the collected capture must be
	// directly usable for signature generation (Figure 3a end to end).
	ds := trafficgen.Generate(trafficgen.Config{Seed: 31, NumApps: 60, TotalPackets: 4000})
	oracle := sensitive.NewOracle(ds.Device)
	rec := collector.New(nil)
	uploaded := 0
	for _, p := range ds.Capture.Packets {
		if !oracle.IsSensitive(p) {
			continue
		}
		if _, err := rec.RecordWire(p.App, p.WireBytes(), p.DstIP, p.DstPort); err != nil {
			t.Fatalf("upload failed: %v", err)
		}
		uploaded++
		if uploaded >= 150 {
			break
		}
	}
	collected := rec.Snapshot()
	if collected.Len() != uploaded {
		t.Fatalf("collected %d of %d uploads", collected.Len(), uploaded)
	}
	sigs := core.NewPipeline(core.Config{}).GenerateSignatures(collected.Packets)
	if sigs.Len() == 0 {
		t.Fatal("no signatures from collected traffic")
	}
	// Signatures learned from wire-round-tripped packets must still detect
	// the original in-memory packets.
	eng := detect.NewEngine(sigs)
	hits := 0
	for _, p := range ds.Capture.Packets {
		if oracle.IsSensitive(p) && eng.Matches(p) {
			hits++
		}
	}
	if hits < uploaded/2 {
		t.Errorf("wire-trained signatures detected only %d packets", hits)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStreamingPipeline is the deployment loop end to end: a signature
// server publishes, a watching client hot-reloads the streaming engine,
// packets flow continuously, and a mid-stream publish flips verdicts
// without a restart or a dropped packet.
func TestStreamingPipeline(t *testing.T) {
	ds := trafficgen.Generate(trafficgen.Config{Seed: 33, NumApps: 80, TotalPackets: 6000})
	oracle := sensitive.NewOracle(ds.Device)
	suspicious := ds.Capture.Filter(oracle.IsSensitive)
	sample := suspicious.Sample(rand.New(rand.NewSource(9)), 100)
	sigs := core.NewPipeline(core.Config{}).GenerateSignatures(sample.Packets)
	if sigs.Len() == 0 {
		t.Fatal("no signatures")
	}

	// Signature server + HTTP transport.
	srv := sigserver.New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Publish(sigs) // version 1

	// Streaming engine fed by a sigserver watch.
	var mu sync.Mutex
	byVersion := map[int64]int{}
	var processed int
	eng := engine.New(nil, engine.Config{Shards: 2, OnVerdict: func(v engine.Verdict) {
		mu.Lock()
		processed++
		if v.Leak() {
			byVersion[v.Version]++
		}
		mu.Unlock()
	}})

	client := sigserver.NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		client.Watch(ctx, 50*time.Millisecond, func(set *signature.Set) { eng.Reload(set) })
	}()
	waitForVersion := func(v int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for eng.Version() != v {
			if time.Now().After(deadline) {
				t.Fatalf("engine never reached version %d (at %d)", v, eng.Version())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitForVersion(1)

	// Phase 1: stream everything under v1; expect the batch matcher's
	// verdict count, attributed to version 1.
	for _, p := range ds.Capture.Packets {
		if err := eng.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	want := 0
	for _, m := range detect.MatchSetWith(detect.NewEngine(sigs), ds.Capture) {
		if m {
			want++
		}
	}
	mu.Lock()
	if byVersion[1] != want {
		mu.Unlock()
		t.Fatalf("v1 leaks = %d, batch matcher says %d", byVersion[1], want)
	}
	mu.Unlock()

	// Phase 2: publish an empty set mid-stream; after the rollover the
	// same traffic must produce zero leaks, all without restarting.
	srv.Publish(&signature.Set{})
	waitForVersion(2)
	for _, p := range ds.Capture.Packets {
		if err := eng.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()

	mu.Lock()
	defer mu.Unlock()
	if processed != 2*ds.Capture.Len() {
		t.Fatalf("processed %d packets, want %d (drops across rollover?)", processed, 2*ds.Capture.Len())
	}
	if byVersion[2] != 0 {
		t.Fatalf("empty v2 set still produced %d leaks", byVersion[2])
	}
	m := eng.Metrics()
	if m.Reloads < 2 || m.Version != 2 {
		t.Errorf("engine metrics after rollover: reloads=%d version=%d", m.Reloads, m.Version)
	}
	cancel()
	<-watchDone
}

// TestClosedLoopOnlineGeneration is the acceptance test for the online
// generation subsystem: an engine starts on an EMPTY signature set, a
// leaking trace streams through it (every packet a miss), and the siggen
// learner — fed only by the engine's miss sink, publishing over the
// sigserver HTTP API, with the engine hot-reloading via Watch — must
// close the loop so that a replay of the same trace is flagged. No
// leakgen/leakcluster invocation anywhere.
func TestClosedLoopOnlineGeneration(t *testing.T) {
	ds := trafficgen.Generate(trafficgen.Config{Seed: 44, NumApps: 60, TotalPackets: 5000})
	oracle := sensitive.NewOracle(ds.Device)
	leaking := ds.Capture.Filter(oracle.IsSensitive)
	benign := ds.Capture.Filter(func(p *httpmodel.Packet) bool { return !oracle.IsSensitive(p) })
	if leaking.Len() == 0 || benign.Len() == 0 {
		t.Fatal("degenerate dataset")
	}
	trace := leaking.Sample(rand.New(rand.NewSource(3)), 250).Packets
	benignCorpus := benign.Sample(rand.New(rand.NewSource(4)), 300).Packets

	// Distribution server over real HTTP, publish endpoint mounted.
	srv := sigserver.New()
	ts := httptest.NewServer(srv.HandlerWithPublish(""))
	defer ts.Close()

	// The learner, publishing through the HTTP API like cmd/siggend.
	learner := siggen.NewService(siggen.Config{
		Publisher:      siggen.NewHTTPPublisher(ts.URL, ""),
		Benign:         benignCorpus,
		MinClusterSize: 2,
		MaxHoldoutFP:   0.02,
		Cluster:        siggen.ClusterConfig{MaxClusters: 32},
	})
	defer learner.Close()

	// The engine: empty set, miss sink into the learner, verdict counts
	// by version for the replay assertion.
	var mu sync.Mutex
	leaksByVersion := map[int64]int{}
	eng := engine.New(nil, engine.Config{
		Shards: 2,
		Sink:   learner.MissSink(),
		OnVerdict: func(v engine.Verdict) {
			if v.Leak() {
				mu.Lock()
				leaksByVersion[v.Version]++
				mu.Unlock()
			}
		},
	})
	defer eng.Close()

	// The engine watches the same server the learner publishes into.
	client := sigserver.NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		client.Watch(ctx, 50*time.Millisecond, func(set *signature.Set) { eng.Reload(set) })
	}()

	// Pass 1: the leaking trace against the empty set — all misses, all
	// sampled by the learner.
	for _, p := range trace {
		if err := eng.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	mu.Lock()
	if len(leaksByVersion) != 0 {
		mu.Unlock()
		t.Fatal("empty set produced leak verdicts")
	}
	mu.Unlock()

	// One learner epoch: cluster, distill, publish.
	published, err := learner.RunEpoch(ctx)
	if err != nil {
		t.Fatalf("learn epoch: %v", err)
	}
	if published == nil || published.Len() == 0 {
		t.Fatalf("learner published nothing; stats %+v", learner.Stats())
	}
	if _, v := srv.Current(); v != published.Version {
		t.Fatalf("server at %d, published %d", v, published.Version)
	}

	// The engine must hot-reload the generated set via its watch.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Version() != published.Version {
		if time.Now().After(deadline) {
			t.Fatalf("engine never reloaded to version %d (at %d)", published.Version, eng.Version())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Pass 2: replay the same trace; the learned signatures must flag it.
	for _, p := range trace {
		if err := eng.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	mu.Lock()
	flagged := leaksByVersion[published.Version]
	mu.Unlock()
	if flagged == 0 {
		t.Fatalf("replay of the leaking trace was not flagged; published %d signatures, stats %+v",
			published.Len(), learner.Stats())
	}
	t.Logf("closed loop: %d signatures published as v%d; replay flagged %d/%d packets",
		published.Len(), published.Version, flagged, len(trace))

	// The learned set must not blanket-match benign traffic.
	benignHits := 0
	for _, p := range benignCorpus {
		if len(eng.MatchPacket(p)) > 0 {
			benignHits++
		}
	}
	if frac := float64(benignHits) / float64(len(benignCorpus)); frac > 0.10 {
		t.Errorf("learned set matches %.0f%% of benign traffic", frac*100)
	}

	// Stale-publish guard: replaying the published version must bounce
	// without disturbing the server.
	stale := &signature.Set{Version: published.Version}
	if _, err := srv.PublishVersioned(stale); err == nil {
		t.Fatal("stale publish was accepted")
	}
	if st := srv.Stats(); st.PublishesRejected == 0 {
		t.Fatal("rejection not counted")
	}
	cancel()
	<-watchDone
}

// TestPerTenantClosedLoopIsolationAndRetirement is the acceptance test
// for the per-tenant signature lifecycle (learn → publish → pin →
// retire): a multi-tenant pool starts on an EMPTY set, tenant A streams
// leaking traffic while tenant B stays clean, and the learner —
// distilling one named set per tenant, publishing over the sigserver
// /sets/{name} HTTP API, with the pool pinning named sets via a
// WatchSets → ReloadTenant wire — must close the loop so that tenant A's
// replayed trace is flagged while the SAME trace under tenant B's key is
// not. Then the population goes quiet: staleness pruning retires the
// source clusters, the learner publishes shrunken (empty) versions, and
// the pool converges off the retired signatures without a restart.
func TestPerTenantClosedLoopIsolationAndRetirement(t *testing.T) {
	leakPkt := func(i int) *httpmodel.Packet {
		return httpmodel.Get("ads.tracker-net.example", "/ad/fetch").
			App("com.a").
			ID(int64(i)).
			Query("zone", "7").
			Query("device_id", "IMEI-358240051111110").
			Query("aid", "9774d56d682e549c").
			UserAgent("Dalvik/1.6.0").
			Build()
	}
	benignPkt := func(i int) *httpmodel.Packet {
		return httpmodel.Get("cdn.example.org", "/static/app.css").
			App("com.b").
			ID(int64(5000+i)).
			Query("rev", "42").
			UserAgent("Dalvik/1.6.0").
			Build()
	}

	// Distribution server over real HTTP, named publish endpoints mounted.
	srv := sigserver.New()
	ts := httptest.NewServer(srv.HandlerWithPublish(""))
	defer ts.Close()

	// The learner distills per-tenant sets, its gates calibrated on a
	// benign corpus (so tenant B's clean browsing never becomes a
	// signature); aggressive staleness so the retirement phase needs only
	// one idle epoch.
	benignCorpus := make([]*httpmodel.Packet, 100)
	for i := range benignCorpus {
		benignCorpus[i] = benignPkt(9000 + i)
	}
	learner := siggen.NewService(siggen.Config{
		Publisher:      siggen.NewHTTPPublisher(ts.URL, ""),
		TenantSets:     true,
		MinClusterSize: 2,
		Benign:         benignCorpus,
		Cluster:        siggen.ClusterConfig{StaleEpochs: 1},
	})
	defer learner.Close()

	// The pool: empty default set, per-tenant miss sinks into the learner.
	pool := engine.NewPool(nil, engine.PoolConfig{
		Engine: engine.Config{Shards: 1, BatchSize: 4},
		ConfigureTenant: func(key string, cfg engine.Config) engine.Config {
			cfg.Sink = learner.MissSinkFor(key)
			return cfg
		},
	})
	defer pool.Close()

	// Strict-isolation watch: each named set pins its tenant. The global
	// set (the union across tenants) is deliberately not installed as the
	// pool default — that would let tenant A's signatures fire on every
	// unpinned tenant, the exact leakage this lifecycle exists to prevent.
	client := sigserver.NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		client.WatchSets(ctx, 50*time.Millisecond, func(name string, set *signature.Set) {
			if name == "" {
				return
			}
			pool.ReloadTenant(name, set)
		})
	}()

	// Pass 1: tenant A leaks, tenant B browses. Everything is a miss
	// against the empty sets; only tenant A's reservoir fills with leak
	// shapes.
	for i := 0; i < 40; i++ {
		if err := pool.Submit("tenant-a", leakPkt(i)); err != nil {
			t.Fatal(err)
		}
		if err := pool.Submit("tenant-b", benignPkt(i)); err != nil {
			t.Fatal(err)
		}
	}
	pool.Flush()

	// One learner epoch: cluster per tenant, distill, publish named sets.
	published, err := learner.RunEpoch(ctx)
	if err != nil {
		t.Fatalf("learn epoch: %v", err)
	}
	if published == nil || published.Len() == 0 {
		t.Fatalf("learner published no global set; stats %+v", learner.Stats())
	}
	setA, vA, _ := srv.CurrentNamed("tenant-a")
	if vA == 0 || setA.Len() == 0 {
		t.Fatalf("tenant-a named set missing: v=%d len=%d; stats %+v", vA, setA.Len(), learner.Stats())
	}

	// The pool must pin tenant A through the named-set watch.
	waitTenantVersion := func(key string, v int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			if eng := pool.Tenant(key); eng != nil && eng.Version() == v {
				return
			}
			if time.Now().After(deadline) {
				eng := pool.Tenant(key)
				t.Fatalf("tenant %s never reloaded to version %d (at %d)", key, v, eng.Version())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitTenantVersion("tenant-a", vA)

	// Pass 2: replay. Tenant A's trace is flagged under tenant A's key —
	// and the SAME trace under tenant B's key is not: B never exhibited
	// that traffic, so A's learned signatures must not fire on it.
	aHits := 0
	for i := 0; i < 40; i++ {
		if len(pool.MatchPacket("tenant-a", leakPkt(1000+i))) > 0 {
			aHits++
		}
		if got := pool.MatchPacket("tenant-b", leakPkt(1000+i)); len(got) != 0 {
			t.Fatalf("tenant-a's learned signatures fired on tenant-b (matched %v)", got)
		}
		if got := pool.MatchPacket("tenant-b", benignPkt(1000+i)); len(got) != 0 {
			t.Fatalf("tenant-b's own traffic flagged (matched %v)", got)
		}
	}
	if aHits == 0 {
		t.Fatalf("tenant-a replay was not flagged; published %d signatures", setA.Len())
	}
	t.Logf("per-tenant loop: tenant-a set v%d (%d signatures) flagged %d/40 replayed packets; tenant-b clean",
		vA, setA.Len(), aHits)

	// Phase 3: drift retirement. The population goes quiet; idle epochs
	// age its clusters out, and the learner must publish shrunken
	// versions — empty sets — that the watch delivers to the pool.
	var retired *signature.Set
	for i := 0; i < 4 && retired == nil; i++ {
		set, err := learner.RunEpoch(ctx)
		if err != nil {
			t.Fatalf("idle epoch %d: %v", i, err)
		}
		if set != nil && set.Len() == 0 {
			retired = set
		}
	}
	if retired == nil {
		t.Fatalf("drift retirement never published; stats %+v", learner.Stats())
	}
	setA2, vA2, _ := srv.CurrentNamed("tenant-a")
	if setA2.Len() != 0 || vA2 <= vA {
		t.Fatalf("tenant-a named set not retired: %d sigs at v%d (was v%d)", setA2.Len(), vA2, vA)
	}
	waitTenantVersion("tenant-a", vA2)
	for i := 0; i < 40; i++ {
		if got := pool.MatchPacket("tenant-a", leakPkt(2000+i)); len(got) != 0 {
			t.Fatalf("retired signatures still fire on tenant-a (matched %v)", got)
		}
	}
	if st := learner.Stats(); st.RetiredSig == 0 {
		t.Fatalf("no retirement counted: %+v", st)
	}
	t.Logf("drift retirement: tenant-a converged to empty v%d; global empty v%d", vA2, retired.Version)
	cancel()
	<-watchDone
}
