package leaksig

// End-to-end integration test across the file-based workflow the command
// line tools implement: generate a capture to disk, reload it, rebuild the
// ground truth from the device file, learn signatures, persist them, reload
// them, and verify detection — every serialization boundary crossed once.

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"leaksig/internal/android"
	"leaksig/internal/capture"
	"leaksig/internal/collector"
	"leaksig/internal/core"
	"leaksig/internal/detect"
	"leaksig/internal/sensitive"
	"leaksig/internal/signature"
	"leaksig/internal/trafficgen"
)

func TestFileBasedPipeline(t *testing.T) {
	dir := t.TempDir()
	capPath := filepath.Join(dir, "capture.jsonl")
	devPath := filepath.Join(dir, "device.json")
	sigPath := filepath.Join(dir, "signatures.json")

	// --- leakgen ---
	ds := trafficgen.Generate(trafficgen.Config{Seed: 21, NumApps: 120, TotalPackets: 10000})
	if err := ds.Capture.SaveJSONL(capPath); err != nil {
		t.Fatal(err)
	}
	devRaw, err := json.Marshal(ds.Device)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(devPath, devRaw, 0o644); err != nil {
		t.Fatal(err)
	}

	// --- leakcluster: reload everything from disk ---
	set, err := capture.LoadJSONL(capPath)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != ds.Capture.Len() {
		t.Fatalf("capture round trip lost packets: %d vs %d", set.Len(), ds.Capture.Len())
	}
	var dev android.Device
	if err := json.Unmarshal(mustRead(t, devPath), &dev); err != nil {
		t.Fatal(err)
	}
	oracle := sensitive.NewOracle(&dev)
	suspicious := set.Filter(oracle.IsSensitive)
	if suspicious.Len() == 0 {
		t.Fatal("no suspicious packets after reload")
	}
	sample := suspicious.Sample(rand.New(rand.NewSource(5)), 120)
	sigs := core.NewPipeline(core.Config{}).GenerateSignatures(sample.Packets)
	if sigs.Len() == 0 {
		t.Fatal("no signatures")
	}
	sf, err := os.Create(sigPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := sigs.WriteJSON(sf); err != nil {
		t.Fatal(err)
	}
	sf.Close()

	// --- leakdetect: reload signatures, score ---
	sf2, err := os.Open(sigPath)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := signature.ReadJSON(sf2)
	sf2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != sigs.Len() {
		t.Fatalf("signature round trip: %d vs %d", reloaded.Len(), sigs.Len())
	}
	labels := make([]bool, set.Len())
	for i, p := range set.Packets {
		labels[i] = oracle.IsSensitive(p)
	}
	res := detect.Evaluate(detect.NewEngine(reloaded), set, labels, sample.Len())
	if res.TruePositiveRate < 0.4 {
		t.Errorf("end-to-end TP = %.2f, implausibly low", res.TruePositiveRate)
	}
	if res.FalsePositiveRate > 0.1 {
		t.Errorf("end-to-end FP = %.3f, implausibly high", res.FalsePositiveRate)
	}
}

func TestCollectorFeedsPipeline(t *testing.T) {
	// Devices upload raw wire requests; the collected capture must be
	// directly usable for signature generation (Figure 3a end to end).
	ds := trafficgen.Generate(trafficgen.Config{Seed: 31, NumApps: 60, TotalPackets: 4000})
	oracle := sensitive.NewOracle(ds.Device)
	rec := collector.New(nil)
	uploaded := 0
	for _, p := range ds.Capture.Packets {
		if !oracle.IsSensitive(p) {
			continue
		}
		if _, err := rec.RecordWire(p.App, p.WireBytes(), p.DstIP, p.DstPort); err != nil {
			t.Fatalf("upload failed: %v", err)
		}
		uploaded++
		if uploaded >= 150 {
			break
		}
	}
	collected := rec.Snapshot()
	if collected.Len() != uploaded {
		t.Fatalf("collected %d of %d uploads", collected.Len(), uploaded)
	}
	sigs := core.NewPipeline(core.Config{}).GenerateSignatures(collected.Packets)
	if sigs.Len() == 0 {
		t.Fatal("no signatures from collected traffic")
	}
	// Signatures learned from wire-round-tripped packets must still detect
	// the original in-memory packets.
	eng := detect.NewEngine(sigs)
	hits := 0
	for _, p := range ds.Capture.Packets {
		if oracle.IsSensitive(p) && eng.Matches(p) {
			hits++
		}
	}
	if hits < uploaded/2 {
		t.Errorf("wire-trained signatures detected only %d packets", hits)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
