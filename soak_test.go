package leaksig

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"leaksig/internal/engine"
	"leaksig/internal/signature"
)

// soakSignatureSet builds a production-scale synthetic set: n conjunction
// signatures over a narrow byte alphabet, so the dense compile is
// realistic but the automaton stays compact. Every republish shares the
// signature slice and bumps only the version — the learner's cheap
// "same catalog, new epoch" publish shape.
func soakSignatureSet(n int, version int64) *signature.Set {
	sigs := make([]*signature.Signature, n)
	for i := range sigs {
		sigs[i] = &signature.Signature{
			ID:     i,
			Tokens: []string{fmt.Sprintf("soak-%05d=", i), "epoch="},
		}
	}
	return &signature.Set{Version: version, Signatures: sigs}
}

// TestSoakReloadChurnFullTrace is the churn soak: a 10,000-signature set
// is republished via ReloadAsync every 50ms while the full trafficgen
// trace streams through the engine. The pins: zero dropped packets, every
// accepted packet processed, generations applied strictly monotonically
// (coalescing may skip tickets but never reorder them), and the final
// applied generation is the last issued ticket — churn never wedges the
// compiler or leaves a stale set live.
func TestSoakReloadChurnFullTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: full trace under signature churn")
	}
	e := env()
	base := soakSignatureSet(10000, 1)

	var processed atomic.Uint64
	eng := engine.New(base, engine.Config{
		Shards: 2, QueueDepth: 1024,
		Sink: engine.BatchCallbackSink(func(vs []engine.Verdict) {
			processed.Add(uint64(len(vs)))
		}),
	})

	// Sampler: generations and versions must never move backward.
	stopSample := make(chan struct{})
	sampleDone := make(chan struct{})
	go func() {
		defer close(sampleDone)
		var lastGen uint64
		var lastVer int64
		for {
			select {
			case <-stopSample:
				return
			default:
			}
			m := eng.Metrics()
			if m.ReloadGen < lastGen {
				t.Errorf("reload generation moved backward: %d after %d", m.ReloadGen, lastGen)
				return
			}
			if m.Version < lastVer {
				t.Errorf("set version moved backward: %d after %d", m.Version, lastVer)
				return
			}
			lastGen, lastVer = m.ReloadGen, m.Version
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Republisher: a new version of the 10k set every 50ms.
	stopPublish := make(chan struct{})
	publishDone := make(chan struct{})
	var issued atomic.Uint64
	go func() {
		defer close(publishDone)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for v := int64(2); ; v++ {
			select {
			case <-stopPublish:
				return
			case <-tick.C:
				eng.ReloadAsync(&signature.Set{Version: v, Signatures: base.Signatures})
				issued.Add(1)
			}
		}
	}()

	for _, p := range e.Dataset.Capture.Packets {
		if err := eng.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	close(stopPublish)
	<-publishDone

	// Quiesce the compiler: the last issued ticket must become the live
	// generation (intermediate tickets may coalesce away, the final one
	// may not).
	deadline := time.Now().Add(30 * time.Second)
	for {
		m := eng.Metrics()
		if !m.PendingReload && m.ReloadGen == issued.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reload churn never quiesced: gen=%d issued=%d pending=%v",
				m.ReloadGen, issued.Load(), m.PendingReload)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stopSample)
	<-sampleDone
	eng.Close()

	m := eng.Metrics()
	total := uint64(len(e.Dataset.Capture.Packets))
	if m.Dropped != 0 {
		t.Errorf("dropped %d packets under reload churn, want 0", m.Dropped)
	}
	if m.Ingested != total || m.Processed != total {
		t.Errorf("ingested=%d processed=%d, want both %d", m.Ingested, m.Processed, total)
	}
	if got := processed.Load(); got != total {
		t.Errorf("sink saw %d verdicts, want %d", got, total)
	}
	if m.Reloads == 0 {
		t.Error("no reload ever applied during the soak")
	}
	t.Logf("soak: %d packets, %d reloads applied of %d issued (coalesced %d), last compile %v",
		total, m.Reloads, issued.Load(), issued.Load()-uint64(m.Reloads), m.LastReload)
}
