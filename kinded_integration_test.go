package leaksig

// End-to-end acceptance for the kinded signature model: a base64-encoding
// leaker streams through an engine that starts EMPTY, the online learner
// distills the encoded traffic — the unordered conjunction dies at the
// held-out FP gate, so the subsequence fallback publishes with its kind on
// the wire — the watching engine hot-reloads, and a replay of the trace is
// flagged. Then the wire boundary itself: a hand-published decode-view
// signature catches a hex-encoded variant, an unknown kind is rejected
// with 400 at publish, and a kind-absent legacy JSON set publishes,
// fetches, compiles and matches identically to its explicit-kind twin.

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"leaksig/internal/detect"
	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	"leaksig/internal/siggen"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// pad3 pads s with 'x' to a multiple of 3 bytes, so a base64 encoding of
// a concatenation aligns each piece to whole 4-character groups: constant
// clear segments encode to constant base64 substrings the learner can
// extract as tokens.
func pad3(s string) string {
	for len(s)%3 != 0 {
		s += "x"
	}
	return s
}

var (
	kindedSegA = pad3("device_id=IMEI-358240051111110&")
	kindedSegB = pad3("aid=9774d56d682e549c&")
)

// b64LeakPacket is one leaking POST: identifiers in A-then-B order inside
// a base64-encoded body, 3-byte-aligned fillers varying per packet.
func b64LeakPacket(i int) *httpmodel.Packet {
	clear := fmt.Sprintf("%06d", i*1371%1000000) + kindedSegA +
		fmt.Sprintf("%06d", i*2467%1000000) + kindedSegB +
		fmt.Sprintf("%06d", i*3613%1000000)
	return httpmodel.Post("collect.exfil-cdn.example", "/v1/collect").
		App("com.adversarial.beacon").
		ID(int64(i)).
		UserAgent("Dalvik/1.6.0").
		Body([]byte("p=" + base64.StdEncoding.EncodeToString([]byte(clear)))).
		Build()
}

// b64ReversedBenignPacket carries the SAME encoded segments B-then-A: an
// unordered conjunction of the learned tokens fires on it, the ordered
// subsequence cannot.
func b64ReversedBenignPacket(i int) *httpmodel.Packet {
	clear := fmt.Sprintf("%06d", i*1371%1000000) + kindedSegB +
		fmt.Sprintf("%06d", i*2467%1000000) + kindedSegA +
		fmt.Sprintf("%06d", i*3613%1000000)
	return httpmodel.Post("collect.exfil-cdn.example", "/v1/collect").
		ID(int64(700 + i)).
		UserAgent("Dalvik/1.6.0").
		Body([]byte("p=" + base64.StdEncoding.EncodeToString([]byte(clear)))).
		Build()
}

func plainBenignPacket(i int) *httpmodel.Packet {
	return httpmodel.Get("cdn.example.org", "/static/app.css").
		ID(int64(3000+i)).
		Query("rev", fmt.Sprintf("%d", i)).
		UserAgent("Dalvik/1.6.0").
		Build()
}

func TestClosedLoopPublishesSubsequenceKind(t *testing.T) {
	// Benign corpus: overwhelmingly plain, with a few reversed encoded
	// shapes at ODD indices only — the learner deals odd indices into its
	// held-out half, so the reversed packets drive the FP gate (3 of 50 =
	// 6% > the 2% budget kills the unordered conjunction) without
	// inflating the Bayes threshold, which calibrates on the even-index
	// training half.
	var benign []*httpmodel.Packet
	for i := 0; i < 100; i++ {
		benign = append(benign, plainBenignPacket(i))
	}
	benign[11] = b64ReversedBenignPacket(0)
	benign[51] = b64ReversedBenignPacket(1)
	benign[71] = b64ReversedBenignPacket(2)

	srv := sigserver.New()
	ts := httptest.NewServer(srv.HandlerWithPublish(""))
	defer ts.Close()

	learner := siggen.NewService(siggen.Config{
		Publisher:      siggen.NewHTTPPublisher(ts.URL, ""),
		Benign:         benign,
		MinClusterSize: 2,
		MaxHoldoutFP:   0.02,
		Cluster:        siggen.ClusterConfig{MaxClusters: 16},
	})
	defer learner.Close()

	var mu sync.Mutex
	leaksByVersion := map[int64]int{}
	eng := engine.New(nil, engine.Config{
		Shards: 2,
		Sink:   learner.MissSink(),
		OnVerdict: func(v engine.Verdict) {
			if v.Leak() {
				mu.Lock()
				leaksByVersion[v.Version]++
				mu.Unlock()
			}
		},
	})
	defer eng.Close()

	client := sigserver.NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		client.Watch(ctx, 50*time.Millisecond, func(set *signature.Set) { eng.Reload(set) })
	}()

	// Pass 1: the encoded leaking trace against the empty set.
	trace := make([]*httpmodel.Packet, 40)
	for i := range trace {
		trace[i] = b64LeakPacket(i)
		if err := eng.Submit(trace[i]); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()

	// One learner epoch: the conjunction candidate dies at the FP gate,
	// the ordered fallback survives and publishes with its kind set.
	published, err := learner.RunEpoch(ctx)
	if err != nil {
		t.Fatalf("learn epoch: %v", err)
	}
	if published == nil || published.Len() == 0 {
		t.Fatalf("learner published nothing; stats %+v", learner.Stats())
	}
	subseq := 0
	for _, sig := range published.Signatures {
		if sig.Kind == signature.KindSubsequence {
			subseq++
		}
	}
	if subseq == 0 {
		t.Fatalf("no subsequence-kind signature in the published set: %v, stats %+v",
			published.Signatures, learner.Stats())
	}

	// The engine hot-reloads the learned set via its watch.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Version() != published.Version {
		if time.Now().After(deadline) {
			t.Fatalf("engine never reloaded to version %d (at %d)", published.Version, eng.Version())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Pass 2: the replay is flagged; reversed-order benign traffic is not.
	for _, p := range trace {
		if err := eng.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()
	mu.Lock()
	flagged := leaksByVersion[published.Version]
	mu.Unlock()
	if flagged != len(trace) {
		t.Fatalf("replay flagged %d/%d packets; published %v", flagged, len(trace), published.Signatures)
	}
	for i := 0; i < 8; i++ {
		if got := eng.MatchPacket(b64ReversedBenignPacket(100 + i)); len(got) != 0 {
			t.Fatalf("ordered signature fired on reversed-order benign traffic: %v", got)
		}
	}
	t.Logf("closed loop: %d signatures (%d subsequence-kind) published as v%d; replay flagged %d/%d",
		published.Len(), subseq, published.Version, flagged, len(trace))
}

// TestKindedWireBoundary covers publish-time validation and wire
// compatibility over real HTTP: a decode-view signature published as JSON
// catches an encoded variant after hot-reload, an unknown kind is
// rejected with 400, and a kind-absent legacy set round-trips into an
// engine that matches exactly like its explicit-kind twin.
func TestKindedWireBoundary(t *testing.T) {
	srv := sigserver.New()
	ts := httptest.NewServer(srv.HandlerWithPublish(""))
	defer ts.Close()

	publish := func(body string) (*http.Response, error) {
		return http.Post(ts.URL+"/publish", "application/json", bytes.NewReader([]byte(body)))
	}

	// Unknown kinds and views bounce at the boundary with 400.
	for _, bad := range []string{
		`{"signatures":[{"id":0,"kind":"regex","tokens":["imei="]}]}`,
		`{"signatures":[{"id":0,"tokens":["imei="],"views":["rot13"]}]}`,
	} {
		resp, err := publish(bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("invalid set %s accepted with %d", bad, resp.StatusCode)
		}
	}

	// A hand-published hex-view subsequence signature (the curl shape the
	// README documents) compiles and catches a hex-encoded leak.
	resp, err := publish(`{"signatures":[{
	  "id": 0, "kind": "subsequence",
	  "tokens": ["device_id=IMEI-358240051111110", "aid=9774d56d682e549c"],
	  "host_suffix": "exfil-cdn.example", "views": ["hex"], "cluster_size": 1
	}]}`)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("view signature publish failed: %d", resp.StatusCode)
	}
	client := sigserver.NewClient(ts.URL, nil)
	fetched, _, err := client.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	eng := detect.NewEngine(fetched)
	hexBody := "p=" + hex.EncodeToString([]byte("device_id=IMEI-358240051111110&x=1&aid=9774d56d682e549c"))
	hexLeak := httpmodel.Post("collect.exfil-cdn.example", "/v1/collect").
		Body([]byte(hexBody)).Build()
	if !eng.Matches(hexLeak) {
		t.Fatal("published hex-view signature missed the hex-encoded leak")
	}
	reversed := "p=" + hex.EncodeToString([]byte("aid=9774d56d682e549c&device_id=IMEI-358240051111110"))
	if eng.Matches(httpmodel.Post("collect.exfil-cdn.example", "/v1/collect").
		Body([]byte(reversed)).Build()) {
		t.Fatal("subsequence signature ignored token order through the wire")
	}

	// Legacy wire compatibility: a set with no kind field anywhere
	// publishes, fetches and matches exactly like its explicit twin.
	legacyJSON := `{"signatures":[
	  {"id":0,"tokens":["udid=f3a9","zone="],"cluster_size":2},
	  {"id":1,"tokens":["imei=3569"],"host_suffix":"ads.example","cluster_size":2}
	]}`
	resp, err = publish(legacyJSON)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy kind-absent publish failed: %d", resp.StatusCode)
	}
	legacy, _, err := client.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	explicit := &signature.Set{}
	for _, s := range legacy.Signatures {
		c := *s
		c.Kind = signature.KindConjunction
		explicit.Signatures = append(explicit.Signatures, &c)
		if s.Kind != "" {
			t.Fatalf("legacy fetch grew a kind: %q", s.Kind)
		}
	}
	le, ee := detect.NewEngine(legacy), detect.NewEngine(explicit)
	probes := []*httpmodel.Packet{
		httpmodel.Get("x.ads.example", "/a?zone=1&udid=f3a9").Build(),
		httpmodel.Get("x.ads.example", "/a?imei=3569").Build(),
		httpmodel.Get("elsewhere.example", "/a?imei=3569").Build(),
		httpmodel.Get("x.ads.example", "/benign").Build(),
	}
	for i, p := range probes {
		lg, eg := le.MatchPacket(p), ee.MatchPacket(p)
		if len(lg) != len(eg) {
			t.Fatalf("probe %d: legacy=%v explicit=%v", i, lg, eg)
		}
		for j := range lg {
			if lg[j] != eg[j] {
				t.Fatalf("probe %d: legacy=%v explicit=%v", i, lg, eg)
			}
		}
	}
}
