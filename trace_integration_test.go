package leaksig

// Acceptance test for the tracing plane: one head-sampled trace ID must
// survive the whole closed loop — packet ingest, an NDJSON forward hop
// (the flowproxy/leakstream → siggend wire format), the engine miss
// path, the learner's reservoir and clusters, the published set's
// provenance, the sigserver publish and fetch HTTP hops (via the
// X-Leaksig-Trace header), and the watching engine's reload apply —
// with every process boundary crossed the way the daemons cross it.

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	obstrace "leaksig/internal/obs/trace"
	"leaksig/internal/sensitive"
	"leaksig/internal/siggen"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
	"leaksig/internal/trafficgen"
)

func TestTraceIDSpansClosedLoop(t *testing.T) {
	ds := trafficgen.Generate(trafficgen.Config{Seed: 77, NumApps: 60, TotalPackets: 5000})
	oracle := sensitive.NewOracle(ds.Device)
	leaking := ds.Capture.Filter(oracle.IsSensitive)
	if leaking.Len() == 0 {
		t.Fatal("degenerate dataset")
	}
	suspects := leaking.Sample(rand.New(rand.NewSource(7)), 200).Packets

	srv := sigserver.New()
	ts := httptest.NewServer(srv.HandlerWithPublish(""))
	defer ts.Close()

	tracer := obstrace.NewTracer(1) // sample everything: determinism over realism
	learner := siggen.NewService(siggen.Config{
		Publisher:      siggen.NewHTTPPublisher(ts.URL, ""),
		MinClusterSize: 2,
		Cluster:        siggen.ClusterConfig{MaxClusters: 32},
		Tracer:         tracer,
	})
	defer learner.Close()

	eng := engine.New(nil, engine.Config{Shards: 1, Sink: learner.MissSink()})
	defer eng.Close()

	// The watcher applies reloads the way cmd/leakstream does: adopt the
	// set's provenance trace, apply, stamp the final stage.
	var mu sync.Mutex
	var reloadTrace string
	client := sigserver.NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		client.Watch(ctx, 50*time.Millisecond, func(set *signature.Set) {
			var id string
			if len(set.Traces) > 0 {
				id = set.Traces[0]
			}
			sp := tracer.Adopt(id)
			start := time.Now()
			eng.Reload(set)
			tracer.Observe(obstrace.StageReloadApply, time.Since(start))
			sp.Stamp(obstrace.StageReloadApply)
			sp.Finish()
			mu.Lock()
			reloadTrace = id
			mu.Unlock()
		})
	}()

	// Ingest: every suspect is sampled at the origin, forwarded across a
	// JSON round trip (the NDJSON miss-forward wire), adopted on the far
	// side, and run through the engine into the learner's intake.
	fed := map[string]bool{}
	for _, p := range suspects {
		p.BeginTrace(tracer)
		if p.Trace == "" {
			t.Fatal("sample-1 tracer left a packet untraced")
		}
		fed[p.Trace] = true
		origin := p.Span
		wire, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		origin.Finish() // the origin process's half of the trace ends here

		q := new(httpmodel.Packet)
		if err := json.Unmarshal(wire, q); err != nil {
			t.Fatal(err)
		}
		if q.Trace != p.Trace {
			t.Fatalf("trace ID lost on the wire: %q != %q", q.Trace, p.Trace)
		}
		q.BeginTrace(tracer) // adopts the forwarded ID, never resamples
		if err := eng.Submit(q); err != nil {
			t.Fatal(err)
		}
	}
	eng.Flush()

	published, err := learner.RunEpoch(ctx)
	if err != nil {
		t.Fatalf("learn epoch: %v", err)
	}
	if published == nil || published.Len() == 0 {
		t.Fatalf("learner published nothing; stats %+v", learner.Stats())
	}

	// The published set carries provenance, and only IDs we fed.
	if len(published.Traces) == 0 {
		t.Fatal("published set carries no provenance traces")
	}
	for _, id := range published.Traces {
		if !fed[id] {
			t.Errorf("published trace %q was never fed", id)
		}
	}

	// The fetch hop: the server surfaces the provenance trace as the
	// X-Leaksig-Trace response header on the set it distributes.
	resp, err := http.Get(ts.URL + "/signatures")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(sigserver.TraceHeader); got != published.Traces[0] {
		t.Errorf("fetch header %s = %q, want %q", sigserver.TraceHeader, got, published.Traces[0])
	}

	// The reload hop: the watcher must see the same trace and apply it.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Version() != published.Version {
		if time.Now().After(deadline) {
			t.Fatalf("engine never reloaded to version %d (at %d)", published.Version, eng.Version())
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	gotReload := reloadTrace
	mu.Unlock()
	if gotReload != published.Traces[0] {
		t.Errorf("reload adopted trace %q, want %q", gotReload, published.Traces[0])
	}

	// The stage histograms must show the whole journey: packet stages
	// from the engine span, miss-path stages from the learner, and the
	// epoch-granular distill/publish/reload observations.
	counts := map[string]uint64{}
	for _, s := range tracer.Snapshot() {
		counts[s.Stage] = s.Count
	}
	for _, stage := range []string{"enqueue", "drain", "match", "sink", "reservoir", "cluster", "distill", "publish", "reload_apply"} {
		if counts[stage] == 0 {
			t.Errorf("stage %q never observed; counts %v", stage, counts)
		}
	}
	st := tracer.Stats()
	if st.Adopted == 0 {
		t.Error("no spans were adopted across the forward hop")
	}
	t.Logf("closed-loop trace: %d sampled, %d adopted, %d finished; provenance %v; stages %v",
		st.Started, st.Adopted, st.Finished, published.Traces, counts)

	cancel()
	<-watchDone
}
