#!/usr/bin/env bash
# Closed-loop smoke: stream a synthetic trace through `leakstream -learn
# -learn-tenants` against a local sigserver that starts EMPTY, and assert
# that online generation auto-published (a) at least one global
# signature-set version and (b) at least one per-tenant NAMED set under
# /sets/{tenant}/ — the detect → cluster → generate → publish loop, per
# population, with no manual leakgen step. The leakstream stats line
# (packets/s) is echoed into the job log.
set -euo pipefail

PORT="${LOOP_SMOKE_PORT:-8701}"
MPORT="${LOOP_SMOKE_METRICS_PORT:-8702}"
DPORT="${LOOP_SMOKE_DEBUG_PORT:-8703}"
CPORT="${LOOP_SMOKE_CHAOS_PORT:-8704}"
CLPORT="${LOOP_SMOKE_CHAOS_STREAM_PORT:-8705}"
dir="$(mktemp -d)"
cleanup() {
  [ -n "${server_pid:-}" ] && kill "$server_pid" 2>/dev/null || true
  [ -n "${stream_pid:-}" ] && kill "$stream_pid" 2>/dev/null || true
  [ -n "${chaos_server_pid:-}" ] && kill "$chaos_server_pid" 2>/dev/null || true
  [ -n "${chaos_stream_pid:-}" ] && kill "$chaos_stream_pid" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$dir/bin/" ./cmd/leakgen ./cmd/sigserver ./cmd/leakstream ./cmd/leakeval

echo "== adversarial encodings: decode views vs base64/hex/url/gzip leak bodies"
"$dir/bin/leakeval" -adversarial | tee "$dir/adversarial.log"
grep -q '^PASS: decode views' "$dir/adversarial.log" \
  || { echo "FAIL: adversarial decode-view scenario did not pass" >&2; exit 1; }

echo "== generating the example trace"
"$dir/bin/leakgen" -seed 7 -apps 40 -packets 3000 \
  -out "$dir/trace.jsonl" -device "$dir/device.json"

echo "== starting an empty sigserver on :$PORT"
"$dir/bin/sigserver" -addr "127.0.0.1:$PORT" >"$dir/sigserver.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 50); do
  curl -fs "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fs "http://127.0.0.1:$PORT/healthz" >/dev/null

v0="$(curl -fs "http://127.0.0.1:$PORT/version")"
echo "== sigserver starts at version $v0"

echo "== streaming the trace through leakstream -learn -learn-tenants -trace-sample 1"
"$dir/bin/leakstream" -server "http://127.0.0.1:$PORT" -learn -learn-tenants \
  -tenant-by app -learn-min-cluster 2 -trace-sample 1 \
  <"$dir/trace.jsonl" >"$dir/verdicts.jsonl" 2>"$dir/stream.log"

echo "== leakstream log (packets/s in the engine stats line):"
cat "$dir/stream.log"

v1="$(curl -fs "http://127.0.0.1:$PORT/version")"
echo "== sigserver version: $v0 -> $v1"
echo "== server stats: $(curl -fs "http://127.0.0.1:$PORT/stats")"

if [ "$v1" -le "$v0" ]; then
  echo "FAIL: no signature set was auto-published" >&2
  exit 1
fi

sets_json="$(curl -fs "http://127.0.0.1:$PORT/sets")"
echo "== set catalog: $sets_json"
named="$(printf '%s' "$sets_json" | python3 -c '
import json, sys
d = json.load(sys.stdin)
print(sum(1 for name, v in d["sets"].items() if name and v > 0))
')"
if [ "$named" -lt 1 ]; then
  echo "FAIL: no per-tenant named set was published alongside the global set" >&2
  exit 1
fi
echo "PASS: closed loop published global version $v1 plus $named per-tenant named set(s)"

echo "== trace plane: one trace ID from miss verdict to published signature"
if ! grep -q '"trace":"' "$dir/verdicts.jsonl"; then
  echo "FAIL: no verdict line carries a trace ID at -trace-sample 1" >&2
  exit 1
fi
hdr_trace="$(curl -fsD - -o /dev/null "http://127.0.0.1:$PORT/signatures" \
  | tr -d '\r' | awk -F': ' 'tolower($1)=="x-leaksig-trace"{print $2}')"
if [ -z "$hdr_trace" ]; then
  echo "FAIL: published set fetch carries no X-Leaksig-Trace provenance header" >&2
  exit 1
fi
if ! grep -q "\"trace\":\"$hdr_trace\"" "$dir/verdicts.jsonl"; then
  echo "FAIL: provenance trace $hdr_trace never appeared as a miss verdict" >&2
  exit 1
fi
echo "PASS: trace $hdr_trace spans miss verdict -> published set -> fetch header"

echo "== streaming the FULL trafficgen trace through leakstream (perf smoke)"
"$dir/bin/leakgen" -seed 1 -out "$dir/full.jsonl" -device "$dir/device_full.json"
full_n="$(wc -l <"$dir/full.jsonl")"
echo "== full trace: $full_n packets, matching against the learned signature set"
"$dir/bin/leakstream" -server "http://127.0.0.1:$PORT" \
  <"$dir/full.jsonl" >/dev/null 2>"$dir/full.log"
echo "== full-trace engine stats (packets/s + p50/p99 latency):"
cat "$dir/full.log"
if ! grep -Eq "pps=[0-9]" "$dir/full.log"; then
  echo "FAIL: no packets/s stats line from the full-trace stream" >&2
  exit 1
fi
if ! grep -Eq "p99=" "$dir/full.log"; then
  echo "FAIL: no p99 latency in the full-trace stats line" >&2
  exit 1
fi
echo "PASS: full ${full_n}-packet trace streamed; throughput and tail latency logged above"

echo "== ops-plane smoke: /metrics and /readyz across the pipeline"

# metric NAME VALUE_REGEX FILE: assert the series is present with a
# non-negative value (a leading digit — a negative value would start
# with '-').
metric() {
  if ! grep -Eq "^$1(\{[^}]*\})? $2" "$3"; then
    echo "FAIL: metric $1 missing or negative in $3" >&2
    grep -E "^$1" "$3" >&2 || true
    exit 1
  fi
}

curl -fs "http://127.0.0.1:$PORT/readyz" >/dev/null \
  || { echo "FAIL: sigserver not ready after publishing" >&2; exit 1; }
curl -fs "http://127.0.0.1:$PORT/metrics" >"$dir/sigserver.metrics"
metric leaksig_sigserver_publishes_total '[0-9]' "$dir/sigserver.metrics"
metric leaksig_sigserver_seq '[1-9]' "$dir/sigserver.metrics"
metric leaksig_build_info '1' "$dir/sigserver.metrics"

echo "== daemon-mode leakstream with a tight per-tenant intake limit on :$MPORT"
"$dir/bin/leakstream" -server "http://127.0.0.1:$PORT" -listen "127.0.0.1:$MPORT" \
  -tenant-rate 5 -tenant-burst 5 -rate-policy drop \
  -trace-sample 1 -debug-addr "127.0.0.1:$DPORT" \
  </dev/null >/dev/null 2>"$dir/daemon.log" &
stream_pid=$!
for _ in $(seq 1 50); do
  curl -fs "http://127.0.0.1:$MPORT/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
# /readyz flips once the sigserver watch delivers the learned set.
ready=""
for _ in $(seq 1 50); do
  if curl -fs "http://127.0.0.1:$MPORT/readyz" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.2
done
[ -n "$ready" ] || { echo "FAIL: leakstream never became ready" >&2; exit 1; }

# 200 packets for one tenant against a 5-token bucket: most must be shed
# by the limiter, and the drops must be visible in the exposition.
head -200 "$dir/trace.jsonl" \
  | curl -fs --data-binary @- "http://127.0.0.1:$MPORT/ingest?tenant=smoke-tenant" >/dev/null
curl -fs "http://127.0.0.1:$MPORT/metrics" >"$dir/leakstream.metrics"
metric leaksig_engine_packets_per_second '[0-9]' "$dir/leakstream.metrics"
metric leaksig_intake_allowed_total '[1-9]' "$dir/leakstream.metrics"
metric leaksig_intake_limited_total '[1-9]' "$dir/leakstream.metrics"
metric leaksig_build_info '1' "$dir/leakstream.metrics"
limited="$(awk '$1 == "leaksig_intake_limited_total" {print $2}' "$dir/leakstream.metrics")"
echo "PASS: ops plane live — sigserver publishes scraped, leakstream shed $limited over-limit packets"

echo "== flight recorder: the shedding storm above must have recorded a drop burst"
curl -fs "http://127.0.0.1:$DPORT/debug/flight" >"$dir/flight.json"
python3 - "$dir/flight.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
kinds = [e["kind"] for e in d["events"]]
assert d["stats"]["recorded"] > 0, f"flight recorder saw nothing: {d['stats']}"
assert "drop_burst" in kinds, f"no drop_burst event in the dump; kinds={kinds}"
print(f"flight dump: {len(d['events'])} events held, kinds={sorted(set(kinds))}")
PY
# The daemon's watch adopted the learned set's provenance trace on reload.
metric leaksig_trace_spans_adopted_total '[1-9]' "$dir/leakstream.metrics"
echo "PASS: flight recorder dumped the drop burst; reload adopted the provenance trace"

echo "== chaos phase: faults on the wire, a SIGKILLed journal-backed sigserver, and a degraded cached boot"

# Keep the learned set for the chaos server before tearing the old one down.
curl -fs "http://127.0.0.1:$PORT/signatures" >"$dir/learned.json"

# Clean SIGTERM: both daemons must exit 0, not die on the signal default.
kill -TERM "$stream_pid"
wait "$stream_pid" || { echo "FAIL: leakstream SIGTERM exit was not clean" >&2; exit 1; }
stream_pid=""
kill -TERM "$server_pid"
wait "$server_pid" || { echo "FAIL: sigserver SIGTERM exit was not clean" >&2; exit 1; }
server_pid=""
echo "PASS: leakstream and sigserver both exited cleanly on SIGTERM"

FAULT_SEED="${FAULT_SEED:-7}"
journal="$dir/publish.journal"
sigcache="$dir/sigs.cache"

start_chaos_server() {
  "$dir/bin/sigserver" -addr "127.0.0.1:$CPORT" -journal "$journal" \
    >>"$dir/chaos_sigserver.log" 2>&1 &
  chaos_server_pid=$!
  for _ in $(seq 1 50); do
    curl -fs "http://127.0.0.1:$CPORT/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fs "http://127.0.0.1:$CPORT/healthz" >/dev/null
}

start_chaos_stream() {
  # 10% connection resets and 10% injected latency on every outbound
  # HTTP call, deterministically seeded — the watch must still converge.
  LEAKSIG_FAULTS="seed=$FAULT_SEED,reset=0.1,latency_p=0.1,latency=5ms" FAULT_SEED="$FAULT_SEED" \
    "$dir/bin/leakstream" -server "http://127.0.0.1:$CPORT" -poll 1s \
    -listen "127.0.0.1:$CLPORT" -sig-cache "$sigcache" \
    </dev/null >/dev/null 2>>"$dir/chaos_stream.log" &
  chaos_stream_pid=$!
  for _ in $(seq 1 50); do
    curl -fs "http://127.0.0.1:$CLPORT/healthz" >/dev/null 2>&1 && break
    sleep 0.2
  done
  curl -fs "http://127.0.0.1:$CLPORT/healthz" >/dev/null
}

start_chaos_server
curl -fs -X POST --data-binary "@$dir/learned.json" "http://127.0.0.1:$CPORT/publish" >/dev/null
chaos_v="$(curl -fs "http://127.0.0.1:$CPORT/version")"
start_chaos_stream

# Version convergence through the faults: the engine must reach the
# server's version despite resets and latency on the watch path.
converged=""
for _ in $(seq 1 100); do
  got="$(curl -fs "http://127.0.0.1:$CLPORT/metrics" 2>/dev/null \
    | awk '$1 == "leaksig_engine_signature_version" {print int($2)}')" || true
  if [ "${got:-0}" -ge "$chaos_v" ]; then converged=1; break; fi
  sleep 0.2
done
[ -n "$converged" ] || { echo "FAIL: engine never converged to version $chaos_v under faults" >&2; exit 1; }
curl -fs "http://127.0.0.1:$CLPORT/metrics" >"$dir/chaos.metrics"
metric leaksig_degraded '0' "$dir/chaos.metrics"
faults_hit="$(awk '/^leaksig_faults_injected_total/ {s+=$2} END {print s+0}' "$dir/chaos.metrics")"
echo "PASS: version $chaos_v converged under chaos (seed $FAULT_SEED, $faults_hit faults injected)"

# SIGKILL the server mid-flight, then boot a FRESH leakstream against the
# dead address: the sig-cache must carry it to ready-degraded.
kill -9 "$chaos_server_pid"
wait "$chaos_server_pid" 2>/dev/null || true
chaos_server_pid=""
kill -TERM "$chaos_stream_pid"
wait "$chaos_stream_pid" || { echo "FAIL: chaos leakstream SIGTERM exit was not clean" >&2; exit 1; }
chaos_stream_pid=""
[ -s "$sigcache" ] || { echo "FAIL: sig-cache file was never written" >&2; exit 1; }

start_chaos_stream
readyz="$(curl -fs "http://127.0.0.1:$CLPORT/readyz")"
if [ "$readyz" != "ready-degraded" ]; then
  echo "FAIL: cached boot against a dead server answered /readyz '$readyz', want 'ready-degraded'" >&2
  exit 1
fi
curl -fs "http://127.0.0.1:$CLPORT/metrics" >"$dir/degraded.metrics"
metric leaksig_degraded '1' "$dir/degraded.metrics"
echo "PASS: dead-server boot serves cached signatures (ready-degraded, leaksig_degraded 1)"

# Restart the server on its journal: versions replay, the watch reconnects,
# and the degraded gauge must recover to 0.
start_chaos_server
replayed_v="$(curl -fs "http://127.0.0.1:$CPORT/version")"
if [ "$replayed_v" -lt "$chaos_v" ]; then
  echo "FAIL: journal replay rolled back: version $replayed_v after restart, had $chaos_v" >&2
  exit 1
fi
recovered=""
for _ in $(seq 1 100); do
  dgr="$(curl -fs "http://127.0.0.1:$CLPORT/metrics" 2>/dev/null \
    | awk '$1 == "leaksig_degraded" {print int($2)}')" || true
  if [ "${dgr:-1}" -eq 0 ]; then recovered=1; break; fi
  sleep 0.2
done
[ -n "$recovered" ] || { echo "FAIL: leaksig_degraded never recovered to 0 after server restart" >&2; exit 1; }
readyz="$(curl -fs "http://127.0.0.1:$CLPORT/readyz")"
[ "$readyz" = "ready" ] || { echo "FAIL: /readyz '$readyz' after recovery, want 'ready'" >&2; exit 1; }

kill -TERM "$chaos_stream_pid"
wait "$chaos_stream_pid" || { echo "FAIL: recovered leakstream SIGTERM exit was not clean" >&2; exit 1; }
chaos_stream_pid=""
kill -TERM "$chaos_server_pid"
wait "$chaos_server_pid" || { echo "FAIL: journal sigserver SIGTERM exit was not clean" >&2; exit 1; }
chaos_server_pid=""
echo "PASS: chaos phase — journal replayed to v$replayed_v, degraded recovered to 0, clean exits all around"
