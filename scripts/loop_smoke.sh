#!/usr/bin/env bash
# Closed-loop smoke: stream a synthetic trace through `leakstream -learn
# -learn-tenants` against a local sigserver that starts EMPTY, and assert
# that online generation auto-published (a) at least one global
# signature-set version and (b) at least one per-tenant NAMED set under
# /sets/{tenant}/ — the detect → cluster → generate → publish loop, per
# population, with no manual leakgen step. The leakstream stats line
# (packets/s) is echoed into the job log.
set -euo pipefail

PORT="${LOOP_SMOKE_PORT:-8701}"
dir="$(mktemp -d)"
cleanup() {
  [ -n "${server_pid:-}" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$dir/bin/" ./cmd/leakgen ./cmd/sigserver ./cmd/leakstream

echo "== generating the example trace"
"$dir/bin/leakgen" -seed 7 -apps 40 -packets 3000 \
  -out "$dir/trace.jsonl" -device "$dir/device.json"

echo "== starting an empty sigserver on :$PORT"
"$dir/bin/sigserver" -addr "127.0.0.1:$PORT" >"$dir/sigserver.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 50); do
  curl -fs "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fs "http://127.0.0.1:$PORT/healthz" >/dev/null

v0="$(curl -fs "http://127.0.0.1:$PORT/version")"
echo "== sigserver starts at version $v0"

echo "== streaming the trace through leakstream -learn -learn-tenants"
"$dir/bin/leakstream" -server "http://127.0.0.1:$PORT" -learn -learn-tenants \
  -tenant-by app -learn-min-cluster 2 \
  <"$dir/trace.jsonl" >"$dir/verdicts.jsonl" 2>"$dir/stream.log"

echo "== leakstream log (packets/s in the engine stats line):"
cat "$dir/stream.log"

v1="$(curl -fs "http://127.0.0.1:$PORT/version")"
echo "== sigserver version: $v0 -> $v1"
echo "== server stats: $(curl -fs "http://127.0.0.1:$PORT/stats")"

if [ "$v1" -le "$v0" ]; then
  echo "FAIL: no signature set was auto-published" >&2
  exit 1
fi

sets_json="$(curl -fs "http://127.0.0.1:$PORT/sets")"
echo "== set catalog: $sets_json"
named="$(printf '%s' "$sets_json" | python3 -c '
import json, sys
d = json.load(sys.stdin)
print(sum(1 for name, v in d["sets"].items() if name and v > 0))
')"
if [ "$named" -lt 1 ]; then
  echo "FAIL: no per-tenant named set was published alongside the global set" >&2
  exit 1
fi
echo "PASS: closed loop published global version $v1 plus $named per-tenant named set(s)"

echo "== streaming the FULL trafficgen trace through leakstream (perf smoke)"
"$dir/bin/leakgen" -seed 1 -out "$dir/full.jsonl" -device "$dir/device_full.json"
full_n="$(wc -l <"$dir/full.jsonl")"
echo "== full trace: $full_n packets, matching against the learned signature set"
"$dir/bin/leakstream" -server "http://127.0.0.1:$PORT" \
  <"$dir/full.jsonl" >/dev/null 2>"$dir/full.log"
echo "== full-trace engine stats (packets/s + p50/p99 latency):"
cat "$dir/full.log"
if ! grep -Eq "pps=[0-9]" "$dir/full.log"; then
  echo "FAIL: no packets/s stats line from the full-trace stream" >&2
  exit 1
fi
if ! grep -Eq "p99=" "$dir/full.log"; then
  echo "FAIL: no p99 latency in the full-trace stats line" >&2
  exit 1
fi
echo "PASS: full ${full_n}-packet trace streamed; throughput and tail latency logged above"
