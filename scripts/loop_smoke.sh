#!/usr/bin/env bash
# Closed-loop smoke: stream a synthetic trace through `leakstream -learn
# -learn-tenants` against a local sigserver that starts EMPTY, and assert
# that online generation auto-published (a) at least one global
# signature-set version and (b) at least one per-tenant NAMED set under
# /sets/{tenant}/ — the detect → cluster → generate → publish loop, per
# population, with no manual leakgen step. The leakstream stats line
# (packets/s) is echoed into the job log.
set -euo pipefail

PORT="${LOOP_SMOKE_PORT:-8701}"
MPORT="${LOOP_SMOKE_METRICS_PORT:-8702}"
DPORT="${LOOP_SMOKE_DEBUG_PORT:-8703}"
dir="$(mktemp -d)"
cleanup() {
  [ -n "${server_pid:-}" ] && kill "$server_pid" 2>/dev/null || true
  [ -n "${stream_pid:-}" ] && kill "$stream_pid" 2>/dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$dir/bin/" ./cmd/leakgen ./cmd/sigserver ./cmd/leakstream ./cmd/leakeval

echo "== adversarial encodings: decode views vs base64/hex/url/gzip leak bodies"
"$dir/bin/leakeval" -adversarial | tee "$dir/adversarial.log"
grep -q '^PASS: decode views' "$dir/adversarial.log" \
  || { echo "FAIL: adversarial decode-view scenario did not pass" >&2; exit 1; }

echo "== generating the example trace"
"$dir/bin/leakgen" -seed 7 -apps 40 -packets 3000 \
  -out "$dir/trace.jsonl" -device "$dir/device.json"

echo "== starting an empty sigserver on :$PORT"
"$dir/bin/sigserver" -addr "127.0.0.1:$PORT" >"$dir/sigserver.log" 2>&1 &
server_pid=$!
for _ in $(seq 1 50); do
  curl -fs "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fs "http://127.0.0.1:$PORT/healthz" >/dev/null

v0="$(curl -fs "http://127.0.0.1:$PORT/version")"
echo "== sigserver starts at version $v0"

echo "== streaming the trace through leakstream -learn -learn-tenants -trace-sample 1"
"$dir/bin/leakstream" -server "http://127.0.0.1:$PORT" -learn -learn-tenants \
  -tenant-by app -learn-min-cluster 2 -trace-sample 1 \
  <"$dir/trace.jsonl" >"$dir/verdicts.jsonl" 2>"$dir/stream.log"

echo "== leakstream log (packets/s in the engine stats line):"
cat "$dir/stream.log"

v1="$(curl -fs "http://127.0.0.1:$PORT/version")"
echo "== sigserver version: $v0 -> $v1"
echo "== server stats: $(curl -fs "http://127.0.0.1:$PORT/stats")"

if [ "$v1" -le "$v0" ]; then
  echo "FAIL: no signature set was auto-published" >&2
  exit 1
fi

sets_json="$(curl -fs "http://127.0.0.1:$PORT/sets")"
echo "== set catalog: $sets_json"
named="$(printf '%s' "$sets_json" | python3 -c '
import json, sys
d = json.load(sys.stdin)
print(sum(1 for name, v in d["sets"].items() if name and v > 0))
')"
if [ "$named" -lt 1 ]; then
  echo "FAIL: no per-tenant named set was published alongside the global set" >&2
  exit 1
fi
echo "PASS: closed loop published global version $v1 plus $named per-tenant named set(s)"

echo "== trace plane: one trace ID from miss verdict to published signature"
if ! grep -q '"trace":"' "$dir/verdicts.jsonl"; then
  echo "FAIL: no verdict line carries a trace ID at -trace-sample 1" >&2
  exit 1
fi
hdr_trace="$(curl -fsD - -o /dev/null "http://127.0.0.1:$PORT/signatures" \
  | tr -d '\r' | awk -F': ' 'tolower($1)=="x-leaksig-trace"{print $2}')"
if [ -z "$hdr_trace" ]; then
  echo "FAIL: published set fetch carries no X-Leaksig-Trace provenance header" >&2
  exit 1
fi
if ! grep -q "\"trace\":\"$hdr_trace\"" "$dir/verdicts.jsonl"; then
  echo "FAIL: provenance trace $hdr_trace never appeared as a miss verdict" >&2
  exit 1
fi
echo "PASS: trace $hdr_trace spans miss verdict -> published set -> fetch header"

echo "== streaming the FULL trafficgen trace through leakstream (perf smoke)"
"$dir/bin/leakgen" -seed 1 -out "$dir/full.jsonl" -device "$dir/device_full.json"
full_n="$(wc -l <"$dir/full.jsonl")"
echo "== full trace: $full_n packets, matching against the learned signature set"
"$dir/bin/leakstream" -server "http://127.0.0.1:$PORT" \
  <"$dir/full.jsonl" >/dev/null 2>"$dir/full.log"
echo "== full-trace engine stats (packets/s + p50/p99 latency):"
cat "$dir/full.log"
if ! grep -Eq "pps=[0-9]" "$dir/full.log"; then
  echo "FAIL: no packets/s stats line from the full-trace stream" >&2
  exit 1
fi
if ! grep -Eq "p99=" "$dir/full.log"; then
  echo "FAIL: no p99 latency in the full-trace stats line" >&2
  exit 1
fi
echo "PASS: full ${full_n}-packet trace streamed; throughput and tail latency logged above"

echo "== ops-plane smoke: /metrics and /readyz across the pipeline"

# metric NAME VALUE_REGEX FILE: assert the series is present with a
# non-negative value (a leading digit — a negative value would start
# with '-').
metric() {
  if ! grep -Eq "^$1(\{[^}]*\})? $2" "$3"; then
    echo "FAIL: metric $1 missing or negative in $3" >&2
    grep -E "^$1" "$3" >&2 || true
    exit 1
  fi
}

curl -fs "http://127.0.0.1:$PORT/readyz" >/dev/null \
  || { echo "FAIL: sigserver not ready after publishing" >&2; exit 1; }
curl -fs "http://127.0.0.1:$PORT/metrics" >"$dir/sigserver.metrics"
metric leaksig_sigserver_publishes_total '[0-9]' "$dir/sigserver.metrics"
metric leaksig_sigserver_seq '[1-9]' "$dir/sigserver.metrics"
metric leaksig_build_info '1' "$dir/sigserver.metrics"

echo "== daemon-mode leakstream with a tight per-tenant intake limit on :$MPORT"
"$dir/bin/leakstream" -server "http://127.0.0.1:$PORT" -listen "127.0.0.1:$MPORT" \
  -tenant-rate 5 -tenant-burst 5 -rate-policy drop \
  -trace-sample 1 -debug-addr "127.0.0.1:$DPORT" \
  </dev/null >/dev/null 2>"$dir/daemon.log" &
stream_pid=$!
for _ in $(seq 1 50); do
  curl -fs "http://127.0.0.1:$MPORT/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
# /readyz flips once the sigserver watch delivers the learned set.
ready=""
for _ in $(seq 1 50); do
  if curl -fs "http://127.0.0.1:$MPORT/readyz" >/dev/null 2>&1; then ready=1; break; fi
  sleep 0.2
done
[ -n "$ready" ] || { echo "FAIL: leakstream never became ready" >&2; exit 1; }

# 200 packets for one tenant against a 5-token bucket: most must be shed
# by the limiter, and the drops must be visible in the exposition.
head -200 "$dir/trace.jsonl" \
  | curl -fs --data-binary @- "http://127.0.0.1:$MPORT/ingest?tenant=smoke-tenant" >/dev/null
curl -fs "http://127.0.0.1:$MPORT/metrics" >"$dir/leakstream.metrics"
metric leaksig_engine_packets_per_second '[0-9]' "$dir/leakstream.metrics"
metric leaksig_intake_allowed_total '[1-9]' "$dir/leakstream.metrics"
metric leaksig_intake_limited_total '[1-9]' "$dir/leakstream.metrics"
metric leaksig_build_info '1' "$dir/leakstream.metrics"
limited="$(awk '$1 == "leaksig_intake_limited_total" {print $2}' "$dir/leakstream.metrics")"
echo "PASS: ops plane live — sigserver publishes scraped, leakstream shed $limited over-limit packets"

echo "== flight recorder: the shedding storm above must have recorded a drop burst"
curl -fs "http://127.0.0.1:$DPORT/debug/flight" >"$dir/flight.json"
python3 - "$dir/flight.json" <<'PY'
import json, sys
d = json.load(open(sys.argv[1]))
kinds = [e["kind"] for e in d["events"]]
assert d["stats"]["recorded"] > 0, f"flight recorder saw nothing: {d['stats']}"
assert "drop_burst" in kinds, f"no drop_burst event in the dump; kinds={kinds}"
print(f"flight dump: {len(d['events'])} events held, kinds={sorted(set(kinds))}")
PY
# The daemon's watch adopted the learned set's provenance trace on reload.
metric leaksig_trace_spans_adopted_total '[1-9]' "$dir/leakstream.metrics"
echo "PASS: flight recorder dumped the drop burst; reload adopted the provenance trace"
