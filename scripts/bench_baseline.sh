#!/usr/bin/env bash
# Bench baseline: run the engine hot-path benchmarks and append one entry
# — packets/s, allocs/op, MB/s per benchmark — to BENCH_engine.json, the
# perf trajectory the roadmap's scaling work is graded against.
#
# Usage: scripts/bench_baseline.sh [label]
#   label defaults to the current short commit hash.
#   BENCH_TIME         -benchtime passed to go test (default 2x)
#   BENCH_OUT          output JSON path (default BENCH_engine.json)
#   BENCH_REGRESS_PCT  shards=1 packets/s regression tolerance vs the
#                      last committed entry, in percent (default 15)
#   BENCH_GATE=off     record the entry but never fail the build
#
# The gate compares every BenchmarkEngineStreaming/*/shards=1/host
# packets/s against the most recent prior entry carrying the same key;
# a drop beyond the tolerance fails the run AFTER the fresh entry is
# appended, so the regression itself is preserved in the trajectory.
set -euo pipefail

cd "$(dirname "$0")/.."
LABEL="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo unlabeled)}"
OUT="${BENCH_OUT:-BENCH_engine.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run=NONE \
  -bench='BenchmarkEngineStreaming|BenchmarkDetectionThroughput|BenchmarkMatcherDense|BenchmarkCountOnlySink' \
  -benchmem -benchtime="${BENCH_TIME:-2x}" -timeout=30m . | tee "$TMP"

python3 - "$TMP" "$OUT" "$LABEL" "${BENCH_REGRESS_PCT:-15}" "${BENCH_GATE:-on}" <<'PY'
import datetime
import json
import re
import sys

src, out, label = sys.argv[1], sys.argv[2], sys.argv[3]
regress_pct, gate = float(sys.argv[4]), sys.argv[5] != "off"
benches = {}
for line in open(src):
    if not line.startswith("Benchmark"):
        continue
    parts = [p.strip() for p in line.split("\t")]
    # Strip go test's -GOMAXPROCS suffix so entries from machines with
    # different core counts keep comparable keys.
    name = re.sub(r"-\d+$", "", parts[0].split()[0])
    metrics = {}
    for part in parts[2:]:
        toks = part.split()
        if len(toks) != 2:
            continue
        try:
            metrics[toks[1]] = float(toks[0])
        except ValueError:
            continue
    ns = metrics.get("ns/op")
    if ns is None:
        continue
    rec = {"ns_op": ns}
    if "allocs/op" in metrics:
        rec["allocs_op"] = int(metrics["allocs/op"])
    if "MB/s" in metrics:
        rec["mb_per_sec"] = metrics["MB/s"]
    if "pps" in metrics:
        rec["packets_per_sec"] = round(metrics["pps"], 1)
    elif "packets" in metrics:
        rec["packets_per_sec"] = round(metrics["packets"] * 1e9 / ns, 1)
    benches[name] = rec

try:
    with open(out) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {"entries": []}

# Regression gate: the single-shard host-affine streaming keys are the
# per-core baseline the scaling curve stands on; compare each against the
# most recent prior entry that recorded it.
regressions = []
gate_re = re.compile(r"^BenchmarkEngineStreaming/.*/shards=1/host$")
for name, rec in benches.items():
    if not gate_re.match(name) or "packets_per_sec" not in rec:
        continue
    for prior in reversed(doc["entries"]):
        old = prior["benchmarks"].get(name, {}).get("packets_per_sec")
        if not old:
            continue
        new = rec["packets_per_sec"]
        drop = 100.0 * (old - new) / old
        if drop > regress_pct:
            regressions.append(
                f"{name}: {new:,.0f} packets/s vs {old:,.0f} in {prior['label']!r} "
                f"({drop:.1f}% drop > {regress_pct:g}% tolerance)")
        break

doc["entries"].append({
    "label": label,
    "date": datetime.date.today().isoformat(),
    "benchmarks": benches,
})
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"recorded {len(benches)} benchmarks into {out} under label {label!r}")
if regressions:
    for r in regressions:
        print(f"REGRESSION {r}", file=sys.stderr)
    if gate:
        sys.exit(1)
    print("BENCH_GATE=off: regression recorded, build not failed", file=sys.stderr)
PY
