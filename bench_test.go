package leaksig

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, ablation benchmarks for the design choices DESIGN.md calls
// out, and microbenchmarks for the hot paths. Rates are attached as custom
// benchmark metrics (tp@N%, fn@N%, fp@N%), so
//
//	go test -bench=Figure4 -benchmem
//
// prints the series Figure 4 reports.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"leaksig/internal/ahocorasick"
	"leaksig/internal/cluster"
	"leaksig/internal/core"
	"leaksig/internal/detect"
	"leaksig/internal/distance"
	"leaksig/internal/engine"
	"leaksig/internal/eval"
	"leaksig/internal/httpmodel"
	"leaksig/internal/ncd"
	"leaksig/internal/siggen"
	"leaksig/internal/signature"
	"leaksig/internal/trafficgen"
	"leaksig/internal/whois"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *eval.Env
)

// env returns the full-scale dataset (1,188 apps / ~107,859 packets),
// built once per process.
func env() *eval.Env {
	benchEnvOnce.Do(func() {
		benchEnv = eval.NewEnv(trafficgen.Config{Seed: 1})
	})
	return benchEnv
}

// --- Table and figure benchmarks -------------------------------------------

// BenchmarkTableIPermissions regenerates Table I (applications per
// dangerous permission combination).
func BenchmarkTableIPermissions(b *testing.B) {
	e := env()
	b.ResetTimer()
	var rows []eval.TableIRow
	for i := 0; i < b.N; i++ {
		rows = e.TableI()
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(float64(r.Apps), "apps_"+shortCombo(r.Combo.String()))
	}
}

func shortCombo(s string) string {
	if len(s) > 24 {
		return s[:24]
	}
	return s
}

// BenchmarkTableIIDestinations regenerates Table II (packets and apps per
// HTTP host destination).
func BenchmarkTableIIDestinations(b *testing.B) {
	e := env()
	b.ResetTimer()
	var rows []eval.TableIIRow
	for i := 0; i < b.N; i++ {
		rows = e.TableII(26)
	}
	b.StopTimer()
	if len(rows) > 0 {
		b.ReportMetric(float64(rows[0].Packets), "top_host_packets")
		b.ReportMetric(float64(rows[0].Apps), "top_host_apps")
	}
}

// BenchmarkTableIIISensitive regenerates Table III (packets, apps and
// destinations per sensitive-information kind).
func BenchmarkTableIIISensitive(b *testing.B) {
	e := env()
	b.ResetTimer()
	var rows []eval.TableIIIRow
	for i := 0; i < b.N; i++ {
		rows = e.TableIII()
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Kind.String() == "ANDROID ID MD5" {
			b.ReportMetric(float64(r.Packets), "aid_md5_packets")
		}
	}
}

// BenchmarkFigure2DestinationCDF regenerates Figure 2 (cumulative frequency
// distribution of destinations per application).
func BenchmarkFigure2DestinationCDF(b *testing.B) {
	e := env()
	b.ResetTimer()
	var f eval.Figure2Result
	for i := 0; i < b.N; i++ {
		f = e.Figure2()
	}
	b.StopTimer()
	b.ReportMetric(f.Mean, "mean_destinations")
	b.ReportMetric(f.FracOne*100, "pct_one_destination")
	b.ReportMetric(f.FracLE10*100, "pct_le10")
	b.ReportMetric(float64(f.Max), "max_destinations")
}

// BenchmarkFigure4DetectionRate regenerates Figure 4: the full N=100..500
// sweep of signature generation and dataset-wide detection. Custom metrics
// carry the three series.
func BenchmarkFigure4DetectionRate(b *testing.B) {
	e := env()
	b.ResetTimer()
	var pts []eval.Figure4Point
	for i := 0; i < b.N; i++ {
		pts = e.Figure4(eval.Figure4Config{SampleSeed: 42})
	}
	b.StopTimer()
	for _, p := range pts {
		suffix := "@" + itoa(p.N)
		b.ReportMetric(p.TP, "tp"+suffix+"%")
		b.ReportMetric(p.FN, "fn"+suffix+"%")
		b.ReportMetric(p.FP, "fp"+suffix+"%")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// --- Ablation benchmarks ----------------------------------------------------

// ablationPoint runs the Figure 4 experiment at N=300 under one pipeline
// configuration and reports the rates.
func ablationPoint(b *testing.B, cfg core.Config) {
	e := env()
	b.ResetTimer()
	var pts []eval.Figure4Point
	for i := 0; i < b.N; i++ {
		pts = e.Figure4(eval.Figure4Config{
			Ns:         []int{300},
			SampleSeed: 42,
			Pipeline:   cfg,
		})
	}
	b.StopTimer()
	b.ReportMetric(pts[0].TP, "tp%")
	b.ReportMetric(pts[0].FN, "fn%")
	b.ReportMetric(pts[0].FP, "fp%")
	b.ReportMetric(float64(pts[0].Signatures), "signatures")
}

// BenchmarkAblationDistanceMode compares the normalized destination terms
// (repository default) against the paper's literal formulas, which score
// identical destinations as maximally far apart (DESIGN.md §3).
func BenchmarkAblationDistanceMode(b *testing.B) {
	b.Run("normalized", func(b *testing.B) {
		ablationPoint(b, core.Config{Distance: distance.Config{Mode: distance.ModeNormalized}})
	})
	b.Run("literal", func(b *testing.B) {
		ablationPoint(b, core.Config{Distance: distance.Config{Mode: distance.ModeLiteral}})
	})
}

// BenchmarkAblationDestinationTerm isolates the paper's key claim: adding
// the destination distance to the content distance produces better
// module-specific signatures than content alone (§IV-A).
func BenchmarkAblationDestinationTerm(b *testing.B) {
	b.Run("destination+content", func(b *testing.B) {
		ablationPoint(b, core.Config{})
	})
	b.Run("content-only", func(b *testing.B) {
		ablationPoint(b, core.Config{Distance: distance.Config{DestinationWeight: -1}})
	})
}

// BenchmarkAblationLinkage compares the paper's group-average criterion
// with single and complete linkage.
func BenchmarkAblationLinkage(b *testing.B) {
	for _, l := range []cluster.Linkage{cluster.GroupAverage, cluster.Single, cluster.Complete} {
		l := l
		b.Run(l.String(), func(b *testing.B) {
			ablationPoint(b, core.Config{Linkage: l})
		})
	}
}

// BenchmarkAblationSingletonClusters compares the repository default
// (MinClusterSize=2) with the paper's every-cluster signature generation.
func BenchmarkAblationSingletonClusters(b *testing.B) {
	b.Run("skip-singletons", func(b *testing.B) {
		ablationPoint(b, core.Config{Signature: signature.Options{MinClusterSize: 2}})
	})
	b.Run("paper-every-cluster", func(b *testing.B) {
		ablationPoint(b, core.Config{Signature: signature.Options{MinClusterSize: 1}})
	})
}

// BenchmarkExtSignatureTypes compares the paper's conjunction signatures
// with the probabilistic (Bayes) and token-subsequence classes it names as
// future work (§VI), all trained on the same N=300 sample.
func BenchmarkExtSignatureTypes(b *testing.B) {
	e := env()
	b.ResetTimer()
	var rows []eval.SignatureTypeRow
	for i := 0; i < b.N; i++ {
		rows = e.CompareSignatureTypes(300, 42, core.Config{})
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.TP, r.Type+"_tp%")
		b.ReportMetric(r.FP, r.Type+"_fp%")
	}
}

// BenchmarkExtWhoisVerifiedDistance runs the N=300 detection point with the
// §VI WHOIS verification wired into the IP term: organizational identity
// replaces raw prefix similarity wherever the registry knows the answer.
func BenchmarkExtWhoisVerifiedDistance(b *testing.B) {
	e := env()
	reg := whois.NewRegistry(e.Dataset.Universe.OrgBlocks())
	b.Run("prefix-only", func(b *testing.B) {
		ablationPoint(b, core.Config{})
	})
	b.Run("whois-verified", func(b *testing.B) {
		ablationPoint(b, core.Config{
			Distance: distance.Config{OrgResolver: reg.MetricResolver()},
		})
	})
}

// --- Microbenchmarks ---------------------------------------------------------

func benchPackets(n int) []*httpmodel.Packet {
	e := env()
	rng := rand.New(rand.NewSource(7))
	return e.Suspicious.Sample(rng, n).Packets
}

// BenchmarkPacketDistance measures one dpkt evaluation (§IV-B/C).
func BenchmarkPacketDistance(b *testing.B) {
	ps := benchPackets(2)
	m := distance.New(distance.Config{Compressor: ncd.NewCache(ncd.Default())})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Packet(ps[0], ps[1])
	}
}

// BenchmarkDistanceMatrix200 measures the parallel 200-packet matrix.
func BenchmarkDistanceMatrix200(b *testing.B) {
	ps := benchPackets(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := distance.New(distance.Config{})
		distance.NewMatrix(m, ps)
	}
}

// BenchmarkClusterNNChain500 measures agglomeration of a 500-point matrix.
func BenchmarkClusterNNChain500(b *testing.B) {
	n := 500
	rng := rand.New(rand.NewSource(1))
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := rng.Float64()
			d[i][j], d[j][i] = v, v
		}
	}
	mx := benchMatrix{d}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.Agglomerate(mx, cluster.GroupAverage)
	}
}

type benchMatrix struct{ d [][]float64 }

func (m benchMatrix) N() int              { return len(m.d) }
func (m benchMatrix) At(i, j int) float64 { return m.d[i][j] }

// BenchmarkSignatureGeneration measures the full pipeline on 200 packets.
func BenchmarkSignatureGeneration(b *testing.B) {
	ps := benchPackets(200)
	pl := core.NewPipeline(core.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.GenerateSignatures(ps)
	}
}

// BenchmarkDetectionThroughput measures signature matching over the full
// 107,859-packet trace; bytes/op approximates scanned content volume.
func BenchmarkDetectionThroughput(b *testing.B) {
	e := env()
	rng := rand.New(rand.NewSource(3))
	sample := e.Suspicious.Sample(rng, 300)
	set := core.NewPipeline(core.Config{}).GenerateSignatures(sample.Packets)
	eng := detect.NewEngine(set)
	var bytes int64
	for _, p := range e.Dataset.Capture.Packets {
		bytes += int64(len(p.Content()))
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.MatchSet(e.Dataset.Capture)
	}
	b.StopTimer()
	b.ReportMetric(float64(e.Dataset.Capture.Len()), "packets")
}

// BenchmarkMatcherDense measures the zero-allocation dense-automaton
// match path in isolation over the full trace. "match-into" is the exact
// per-packet scan+resolve a shard worker runs (MatchInto with one
// persistent Scratch): dense Aho–Corasick over the content fields, then
// postings-list conjunction resolution. "occurs-segments" is the raw
// automaton segment scan with a reused bitset, no resolution. 0 allocs/op
// is part of the contract (ReportAllocs).
func BenchmarkMatcherDense(b *testing.B) {
	e := env()
	set := benchSignatureSet(300)
	eng := detect.NewEngine(set)
	ps := e.Dataset.Capture.Packets
	var contentBytes int64
	for _, p := range ps {
		contentBytes += int64(len(p.Content()))
	}
	packets := float64(len(ps))
	b.Run("match-into", func(b *testing.B) {
		sc := eng.NewScratch()
		leaks := 0
		b.SetBytes(contentBytes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			leaks = 0
			for _, p := range ps {
				if len(eng.MatchInto(p, sc)) > 0 {
					leaks++
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(packets*float64(b.N)/b.Elapsed().Seconds(), "pps")
		b.ReportMetric(float64(leaks), "leaks")
	})
	b.Run("occurs-segments", func(b *testing.B) {
		var patterns [][]byte
		seen := map[string]bool{}
		for _, sig := range set.Signatures {
			for _, tok := range sig.Tokens {
				if !seen[tok] {
					seen[tok] = true
					patterns = append(patterns, []byte(tok))
				}
			}
		}
		m := ahocorasick.Compile(patterns)
		segs := make([][3][]byte, len(ps))
		for i, p := range ps {
			segs[i] = p.ContentFields()
		}
		occ := make([]uint64, m.BitsetWords())
		b.SetBytes(contentBytes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, s := range segs {
				m.OccursSegments(occ, s[0], s[1], s[2])
			}
		}
		b.StopTimer()
		b.ReportMetric(packets*float64(b.N)/b.Elapsed().Seconds(), "pps")
		b.ReportMetric(float64(len(patterns)), "tokens")
	})
}

// BenchmarkNCDPair measures the content-distance primitive.
func BenchmarkNCDPair(b *testing.B) {
	ps := benchPackets(2)
	comp := ncd.Default()
	x, y := ps[0].Content(), ps[1].Content()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ncd.Distance(comp, x, y)
	}
}

// --- Streaming engine benchmarks --------------------------------------------

// benchSignatureSet trains a conjunction set on an n-packet suspicious
// sample — small n gives a handful of signatures, large n the full
// production-sized set.
func benchSignatureSet(n int) *signature.Set {
	e := env()
	rng := rand.New(rand.NewSource(3))
	sample := e.Suspicious.Sample(rng, n)
	return core.NewPipeline(core.Config{}).GenerateSignatures(sample.Packets)
}

// BenchmarkEngineStreaming measures the sharded streaming hot path over
// the full trace: single-shard vs GOMAXPROCS shards, small vs large
// signature sets, for both host-affine and round-robin sharding.
func BenchmarkEngineStreaming(b *testing.B) {
	e := env()
	var contentBytes int64
	for _, p := range e.Dataset.Capture.Packets {
		contentBytes += int64(len(p.Content()))
	}
	sets := []struct {
		name string
		n    int
	}{{"small-sigs", 50}, {"large-sigs", 300}}
	// The shards axis is the scaling curve BENCH_engine.json records:
	// fixed 1-2-4-8 rather than GOMAXPROCS, so entries from different
	// hosts stay comparable. Oversubscribing a small box is fine — the
	// flat curve is itself the signal (see ARCHITECTURE.md).
	shardCounts := []int{1, 2, 4, 8}
	for _, sc := range sets {
		set := benchSignatureSet(sc.n)
		for _, shards := range shardCounts {
			for _, aff := range []struct {
				name string
				a    engine.Affinity
			}{{"host", engine.AffinityHost}, {"rr", engine.AffinityNone}} {
				name := fmt.Sprintf("%s/shards=%d/%s", sc.name, shards, aff.name)
				b.Run(name, func(b *testing.B) {
					b.SetBytes(contentBytes)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						engine.MatchSet(set, e.Dataset.Capture, engine.Config{
							Shards:   shards,
							Affinity: aff.a,
						})
					}
					b.StopTimer()
					b.ReportMetric(float64(set.Len()), "signatures")
					b.ReportMetric(float64(e.Dataset.Capture.Len()), "packets")
				})
			}
		}
	}
}

// BenchmarkEngineVsBatch pits the streaming engine against the batch
// matcher on identical work — the acceptance gate for the streaming hot
// path: sharded streaming throughput must not trail MatchSetWith.
func BenchmarkEngineVsBatch(b *testing.B) {
	e := env()
	set := benchSignatureSet(300)
	eng := detect.NewEngine(set)
	var contentBytes int64
	for _, p := range e.Dataset.Capture.Packets {
		contentBytes += int64(len(p.Content()))
	}
	b.Run("batch-MatchSetWith", func(b *testing.B) {
		b.SetBytes(contentBytes)
		for i := 0; i < b.N; i++ {
			detect.MatchSetWith(eng, e.Dataset.Capture)
		}
	})
	b.Run("engine-streaming", func(b *testing.B) {
		b.SetBytes(contentBytes)
		for i := 0; i < b.N; i++ {
			engine.MatchSet(set, e.Dataset.Capture, engine.Config{})
		}
	})
}

// BenchmarkEngineReload measures a hot signature rollover under load: the
// cost of compiling and swapping a production-sized set while packets
// stream.
func BenchmarkEngineReload(b *testing.B) {
	set := benchSignatureSet(300)
	eng := engine.New(set, engine.Config{})
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Reload(set)
	}
}

// BenchmarkCountOnlySink pits the count-only aggregation sink against the
// callback sink on the identical full-trace workload. The callback side
// does the least work a real consumer can (one atomic add per verdict);
// the count-only side skips verdict assembly and the per-packet
// indirection entirely, so its packets/s is the engine's aggregation
// ceiling.
func BenchmarkCountOnlySink(b *testing.B) {
	e := env()
	set := benchSignatureSet(10)
	var contentBytes int64
	for _, p := range e.Dataset.Capture.Packets {
		contentBytes += int64(len(p.Content()))
	}
	packets := float64(e.Dataset.Capture.Len())
	stream := func(b *testing.B, cfg engine.Config) {
		b.SetBytes(contentBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng := engine.New(set, cfg)
			for _, p := range e.Dataset.Capture.Packets {
				eng.Submit(p)
			}
			eng.Close()
		}
		b.StopTimer()
		b.ReportMetric(packets*float64(b.N)/b.Elapsed().Seconds(), "pps")
	}
	b.Run("callback-sink", func(b *testing.B) {
		// The minimal aggregating consumer expressible as a callback:
		// engine-wide packet and leak counters shared by every shard.
		var packets, leaks atomic.Uint64
		stream(b, engine.Config{Sink: engine.CallbackSink(func(v engine.Verdict) {
			packets.Add(1)
			if v.Leak() {
				leaks.Add(1)
			}
		})})
	})
	b.Run("count-only", func(b *testing.B) {
		stream(b, engine.Config{Sink: engine.NewCountSink()})
	})
}

// BenchmarkPoolMultiTenant streams the full trace through a multi-tenant
// pool, packets routed to per-app-population tenants, recording the
// trajectory of the tenancy layer: routing, per-tenant engines under a
// shared shard budget, and aggregated counters.
func BenchmarkPoolMultiTenant(b *testing.B) {
	e := env()
	var contentBytes int64
	for _, p := range e.Dataset.Capture.Packets {
		contentBytes += int64(len(p.Content()))
	}
	set := benchSignatureSet(50)
	packets := float64(e.Dataset.Capture.Len())
	for _, tenants := range []int{1, 4, 16} {
		// Pre-split the routing so the hash is not part of the measured
		// hot path: the tenant key of each packet is its app population.
		keys := make([]string, e.Dataset.Capture.Len())
		for i, p := range e.Dataset.Capture.Packets {
			h := uint64(14695981039346656037)
			for j := 0; j < len(p.App); j++ {
				h ^= uint64(p.App[j])
				h *= 1099511628211
			}
			keys[i] = fmt.Sprintf("pop-%d", h%uint64(tenants))
		}
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			b.SetBytes(contentBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool := engine.NewPool(set, engine.PoolConfig{
					Engine: engine.Config{Sink: engine.NewCountSink()},
				})
				for j, p := range e.Dataset.Capture.Packets {
					pool.Submit(keys[j], p)
				}
				pool.Close()
			}
			b.StopTimer()
			b.ReportMetric(packets*float64(b.N)/b.Elapsed().Seconds(), "pps")
			b.ReportMetric(float64(tenants), "tenants")
		})
	}
}

// --- Online signature generation benchmarks ---------------------------------

// BenchmarkSiggenIntake measures the learner's intake hot path — the
// per-miss cost an engine shard pays to feed online generation: the
// verdict filter, the non-blocking channel offer, and (on the intake
// goroutine) the per-tenant reservoir admission.
func BenchmarkSiggenIntake(b *testing.B) {
	ps := benchPackets(512)
	for _, tenants := range []int{1, 16} {
		b.Run(fmt.Sprintf("tenants=%d", tenants), func(b *testing.B) {
			svc := siggen.NewService(siggen.Config{
				IntakeDepth:         1 << 16,
				MaxTenantReservoirs: tenants,
			})
			defer svc.Close()
			sinks := make([]engine.ShardSink, tenants)
			for i := range sinks {
				sinks[i] = svc.MissSinkFor(fmt.Sprintf("tenant-%d", i)).Bind(0, 1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sinks[i%tenants].Verdict(engine.Verdict{Packet: ps[i%len(ps)]})
			}
			b.StopTimer()
			st := svc.Stats()
			b.ReportMetric(float64(st.SinkDropped)/float64(b.N)*100, "dropped%")
		})
	}
}

// BenchmarkIncrementalCluster measures the rolling clusterer's Observe
// path — one packet assigned against every live medoid — at the cluster
// table sizes a learner actually runs with, plus the periodic Compact.
func BenchmarkIncrementalCluster(b *testing.B) {
	ps := benchPackets(2048)
	for _, maxClusters := range []int{8, 32, 64} {
		b.Run(fmt.Sprintf("observe/maxClusters=%d", maxClusters), func(b *testing.B) {
			c := siggen.NewClusterer(siggen.ClusterConfig{MaxClusters: maxClusters}, 1)
			// Warm the table so every observed packet pays the full scan.
			for _, p := range ps[:256] {
				c.Observe(p)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Observe(ps[i%len(ps)])
			}
			b.StopTimer()
			b.ReportMetric(float64(c.Len()), "clusters")
		})
	}
	b.Run("compact/maxClusters=32", func(b *testing.B) {
		c := siggen.NewClusterer(siggen.ClusterConfig{MaxClusters: 32}, 1)
		for _, p := range ps[:512] {
			c.Observe(p)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Keep clusters alive across compactions so every epoch does
			// real merge/election work.
			c.Observe(ps[i%len(ps)])
			c.Compact()
		}
	})
}
