package leaksig

import (
	"math/rand"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	ds := SyntheticDataset(11, 150, 12000)
	if len(ds.Packets) < 6000 {
		t.Fatalf("packets = %d", len(ds.Packets))
	}
	susp := ds.SuspiciousPackets()
	if len(susp) == 0 {
		t.Fatal("no suspicious packets")
	}
	// Sample a training set, generate signatures, detect over everything.
	rng := rand.New(rand.NewSource(2))
	n := 80
	if n > len(susp) {
		n = len(susp)
	}
	train := make([]*Packet, 0, n)
	for _, i := range rng.Perm(len(susp))[:n] {
		train = append(train, susp[i])
	}
	set := GenerateSignatures(train, Config{})
	if set.Len() == 0 {
		t.Fatal("no signatures generated")
	}
	if set.TrainingSize != n {
		t.Errorf("TrainingSize = %d, want %d", set.TrainingSize, n)
	}
	verdicts := Detect(set, ds.Packets)
	if len(verdicts) != len(ds.Packets) {
		t.Fatalf("verdicts = %d", len(verdicts))
	}
	res := Evaluate(set, ds.Packets, ds.Sensitive, n)
	if res.TruePositiveRate <= 0.3 {
		t.Errorf("TP rate = %v, expected meaningful detection", res.TruePositiveRate)
	}
	if res.FalsePositiveRate > 0.10 {
		t.Errorf("FP rate = %v, too many false alarms", res.FalsePositiveRate)
	}
	// Verdicts and Evaluate must agree on the detected-sensitive count.
	det := 0
	for i, v := range verdicts {
		if v && ds.Sensitive[i] {
			det++
		}
	}
	if det != res.DetectedSensitive {
		t.Errorf("Detect/Evaluate disagree: %d vs %d", det, res.DetectedSensitive)
	}
}

func TestFacadeBuilders(t *testing.T) {
	p := Get("admob.com", "/mads/gma").Query("udid", "f3a9").Build()
	if p.RequestLine() != "GET /mads/gma?udid=f3a9 HTTP/1.1" {
		t.Errorf("builder produced %q", p.RequestLine())
	}
	q := Post("flurry.com", "/aap.do").Form("uid", "x").Build()
	if q.Method != "POST" || string(q.Body) != "uid=x" {
		t.Errorf("post builder produced %+v", q)
	}
}

func TestSyntheticDatasetDeterminism(t *testing.T) {
	a := SyntheticDataset(3, 60, 4000)
	b := SyntheticDataset(3, 60, 4000)
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Packets {
		if a.Packets[i].RequestLine() != b.Packets[i].RequestLine() {
			t.Fatal("nondeterministic packets")
		}
		if a.Sensitive[i] != b.Sensitive[i] {
			t.Fatal("nondeterministic labels")
		}
	}
}

// TestDetectStreamParity: the streaming facade must agree verdict-for-
// verdict with the offline facade.
func TestDetectStreamParity(t *testing.T) {
	ds := SyntheticDataset(11, 50, 3000)
	sigs := GenerateSignatures(ds.SuspiciousPackets()[:80], Config{})
	if sigs.Len() == 0 {
		t.Fatal("no signatures")
	}
	batch := Detect(sigs, ds.Packets)
	stream := DetectStream(sigs, ds.Packets, StreamConfig{Shards: 2})
	if len(stream) != len(batch) {
		t.Fatalf("stream returned %d verdicts, batch %d", len(stream), len(batch))
	}
	for i := range batch {
		if stream[i] != batch[i] {
			t.Fatalf("verdict[%d]: stream %v, batch %v", i, stream[i], batch[i])
		}
	}
}

// TestFacadePoolAndSink smoke-tests the multi-tenant and count-only
// facade surface: two tenants with private signature sets stay isolated,
// and a count sink agrees with the callback path.
func TestFacadePoolAndSink(t *testing.T) {
	ds := SyntheticDataset(5, 50, 3000)
	sigs := GenerateSignatures(ds.SuspiciousPackets()[:80], Config{})
	if sigs.Len() == 0 {
		t.Fatal("no signatures")
	}

	pool := NewPool(nil, PoolConfig{Engine: StreamConfig{Shards: 2}})
	defer pool.Close()
	pool.ReloadTenant("signed", sigs)
	// Tenant "unsigned" stays on the pool default (empty set).
	var want int
	for i, p := range ds.Packets {
		if ds.Sensitive[i] {
			want++
		}
		if err := pool.Submit("signed", p); err != nil {
			t.Fatal(err)
		}
		if err := pool.Submit("unsigned", p); err != nil {
			t.Fatal(err)
		}
	}
	pool.Flush()
	signed, ok := pool.TenantMetrics("signed")
	if !ok || signed.Matched == 0 {
		t.Fatalf("signed tenant matched %d packets (live=%v)", signed.Matched, ok)
	}
	unsigned, ok := pool.TenantMetrics("unsigned")
	if !ok || unsigned.Matched != 0 {
		t.Fatalf("unsigned tenant matched %d packets, want 0 (live=%v)", unsigned.Matched, ok)
	}

	sink := NewCountSink()
	eng := NewStreamEngine(sigs, StreamConfig{Shards: 2, Sink: sink})
	for _, p := range ds.Packets {
		if err := eng.Submit(p); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()
	packets, leaks := sink.Totals()
	if packets != uint64(len(ds.Packets)) {
		t.Fatalf("count sink saw %d packets, want %d", packets, len(ds.Packets))
	}
	if leaks != signed.Matched {
		t.Fatalf("count sink saw %d leaks, signed tenant matched %d", leaks, signed.Matched)
	}
}
