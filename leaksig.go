// Package leaksig reproduces "Signature Generation for Sensitive
// Information Leakage in Android Applications" (Kuzuno & Tonami, ICDE
// Workshops 2013): clustering HTTP packets by a combined destination +
// content distance and deriving conjunction signatures that detect
// transmissions of device identifiers, without modifying the Android
// framework.
//
// The package is a thin facade over the implementation packages:
//
//	internal/distance   — the packet distance (§IV-B/C)
//	internal/cluster    — group-average hierarchical clustering (§IV-D)
//	internal/signature  — conjunction signature generation (§IV-E)
//	internal/detect     — the batch matching engine and the paper's TP/FN/FP
//	internal/engine     — the sharded streaming engine with hot reload
//	internal/trafficgen — the calibrated synthetic dataset (§III, §V-A)
//	internal/eval       — every table and figure of the evaluation
//	internal/siggen     — online incremental signature generation
//	internal/sigserver  — signature distribution (Figure 3a)
//	internal/flowcontrol— the on-device vetting proxy (Figure 3b)
//	internal/obs        — the ops plane: Prometheus exposition, event
//	                      shipping, per-tenant intake accounting
//	internal/durable    — crash safety: publish journal, learner
//	                      checkpoints, last-known-good signature cache
//	internal/resilience — jittered backoff + circuit breakers for every
//	                      HTTP write path
//	internal/faultinject— deterministic seedable chaos injection for
//	                      failure drills
//
// Detection comes in two modes. The offline mode (Detect, Evaluate)
// scores a fully materialized capture — the paper's evaluation posture.
// The streaming mode (NewStreamEngine, DetectStream) is the deployment
// posture: a long-running sharded service consuming live packets, whose
// signature set a sigserver publish hot-swaps mid-stream without a
// restart or a dropped packet; cmd/leakstream is its daemon form.
//
// Quickstart:
//
//	sigs := leaksig.GenerateSignatures(suspiciousPackets, leaksig.Config{})
//	verdicts := leaksig.Detect(sigs, allPackets)
package leaksig

import (
	"leaksig/internal/capture"
	"leaksig/internal/core"
	"leaksig/internal/detect"
	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	"leaksig/internal/obs"
	"leaksig/internal/obs/trace"
	"leaksig/internal/sensitive"
	"leaksig/internal/siggen"
	"leaksig/internal/signature"
	"leaksig/internal/trafficgen"
)

// Packet is one captured HTTP request (see internal/httpmodel).
type Packet = httpmodel.Packet

// Config parameterizes the clustering and signature-generation pipeline;
// the zero value reproduces the paper's setup.
type Config = core.Config

// SignatureSet is a generated conjunction signature set.
type SignatureSet = signature.Set

// Result carries the paper's evaluation counts and rates.
type Result = detect.Result

// Get starts a GET request builder (for constructing packets by hand).
func Get(host, path string) *httpmodel.Builder { return httpmodel.Get(host, path) }

// Post starts a POST request builder.
func Post(host, path string) *httpmodel.Builder { return httpmodel.Post(host, path) }

// GenerateSignatures clusters the (suspicious) packets under cfg and emits
// one conjunction signature per cluster (§IV).
func GenerateSignatures(packets []*Packet, cfg Config) *SignatureSet {
	return core.NewPipeline(cfg).GenerateSignatures(packets)
}

// Detect applies the signature set to every packet and returns one verdict
// per packet, in order.
func Detect(set *SignatureSet, packets []*Packet) []bool {
	eng := detect.NewEngine(set)
	return eng.MatchSet(capture.New(packets))
}

// Matcher is the compiled batch matcher (see internal/detect): a dense
// Aho–Corasick automaton over the token union plus an inverted
// token→signature index. Immutable and safe for concurrent use; hot
// per-packet loops should pair it with a MatchScratch per goroutine and
// call MatchInto, which allocates nothing in the steady state.
type Matcher = detect.Engine

// MatchScratch carries all per-packet mutable matching state (automaton
// state, occurrence bitset, remaining-token counters, matched-ID buffer).
// The zero value is ready to use; one per goroutine.
type MatchScratch = detect.Scratch

// NewMatcher compiles a signature set into its matcher once, for callers
// that match many captures or packets against the same set.
func NewMatcher(set *SignatureSet) *Matcher { return detect.NewEngine(set) }

// Evaluate scores a signature set against ground-truth labels using the
// paper's TP/FN/FP equations (§V-B). n is the training-sample size.
func Evaluate(set *SignatureSet, packets []*Packet, sensitiveLabels []bool, n int) Result {
	eng := detect.NewEngine(set)
	return detect.Evaluate(eng, capture.New(packets), sensitiveLabels, n)
}

// StreamEngine is the sharded streaming detector (see internal/engine).
type StreamEngine = engine.Engine

// StreamConfig parameterizes the streaming engine; the zero value selects
// sensible defaults.
type StreamConfig = engine.Config

// StreamVerdict is the outcome of matching one streamed packet.
type StreamVerdict = engine.Verdict

// NewStreamEngine starts a streaming detection engine over the signature
// set. Packets enter through Submit, verdicts leave through the
// StreamConfig.OnVerdict callback, and Reload hot-swaps the signature set
// mid-stream without dropping a packet (ReloadAsync moves even the
// compile off the caller, coalescing publish bursts).
func NewStreamEngine(set *SignatureSet, cfg StreamConfig) *StreamEngine {
	return engine.New(set, cfg)
}

// DetectStream runs every packet through a fresh streaming engine and
// returns one verdict per packet in order — Detect's streaming
// equivalent.
func DetectStream(set *SignatureSet, packets []*Packet, cfg StreamConfig) []bool {
	return engine.MatchSet(set, capture.New(packets), cfg)
}

// Pool is the multi-tenant streaming layer: one engine per tenant key
// (app package, device cohort, destination host) sharing a global shard
// budget, with lazy creation, idle eviction, and pool-wide aggregated
// metrics (see internal/engine).
type Pool = engine.Pool

// PoolConfig parameterizes NewPool; the zero value selects sensible
// defaults.
type PoolConfig = engine.PoolConfig

// PoolSnapshot is a point-in-time view of a pool's tenants and lifetime
// aggregates.
type PoolSnapshot = engine.PoolSnapshot

// NewPool starts an empty multi-tenant pool whose tenants begin life on
// the signature set (nil for empty). Route packets with Pool.Submit, pin
// per-tenant sets with Pool.ReloadTenant, and roll the shared default
// with Pool.Reload.
func NewPool(set *SignatureSet, cfg PoolConfig) *Pool {
	return engine.NewPool(set, cfg)
}

// Sink is the streaming engine's per-shard result consumer interface;
// ShardSink is one shard's bound consumer.
type Sink = engine.Sink

// ShardSink is one shard's private verdict consumer (see engine.Sink).
type ShardSink = engine.ShardSink

// CountSink aggregates packet and leak tallies without assembling
// verdicts — the fastest streaming posture when only totals matter.
type CountSink = engine.CountSink

// NewCountSink returns an empty count-only aggregation sink; pass it as
// StreamConfig.Sink and read totals with CountSink.Totals.
func NewCountSink() *CountSink { return engine.NewCountSink() }

// CallbackSink adapts a per-verdict function to the Sink interface.
func CallbackSink(fn func(StreamVerdict)) Sink { return engine.CallbackSink(fn) }

// VerdictBatch is one drain's worth of verdicts delivered to a
// batch-capable sink; its contents are pooled and valid only inside the
// sink call (see engine.VerdictBatch).
type VerdictBatch = engine.VerdictBatch

// BatchCallbackSink adapts a per-batch function to the Sink interface —
// the zero-allocation verdict path: the batch, its verdicts, and their
// matched-ID slices are recycled after the callback returns, so
// consumers that retain verdicts must copy them.
func BatchCallbackSink(fn func([]StreamVerdict)) Sink { return engine.BatchCallbackSink(fn) }

// TeeSink fans engine results out to several sinks — e.g. a CountSink
// for totals plus a Learner's MissSink feeding online generation.
func TeeSink(sinks ...Sink) Sink { return engine.TeeSink(sinks...) }

// Learner is the online signature-generation service (see
// internal/siggen): it samples unmatched flows from running engines
// through MissSink, maintains rolling tenant-tagged clusters over them,
// distills gated conjunction signatures each epoch, and auto-publishes
// accepted sets to a signature server every watching engine hot-reloads —
// the closed detect → cluster → generate → publish loop. With
// LearnerConfig.TenantSets it additionally publishes one named set per
// tenant (pin them into a Pool with PoolReloader or sigserver named-set
// watches), and signatures whose source clusters go stale are dropped
// from the next published versions (drift retirement). cmd/siggend is
// its daemon form; leakstream -learn embeds it next to a streaming
// engine.
type Learner = siggen.Service

// LearnerConfig parameterizes NewLearner; the zero value selects
// sensible defaults (no publisher means epochs only return sets).
type LearnerConfig = siggen.Config

// LearnerStats is a point-in-time view of a Learner's intake, cluster,
// and publish counters.
type LearnerStats = siggen.Stats

// LearnerClusterConfig tunes the Learner's incremental clusterer.
type LearnerClusterConfig = siggen.ClusterConfig

// SetPublisher is where a Learner sends accepted signature sets; see
// siggen.ServerPublisher and NewHTTPPublisher.
type SetPublisher = siggen.Publisher

// NamedSetPublisher is the per-tenant extension of SetPublisher: a
// publisher that routes sets by name (sigserver's /sets/{name}
// endpoints), which a Learner with TenantSets uses to publish each
// tenant's set under its own version sequence.
type NamedSetPublisher = siggen.NamedPublisher

// NewLearner starts an online signature-generation service. Wire its
// MissSink into a StreamConfig.Sink (or a TeeSink), or feed it directly
// with Observe; drive epochs with RunEpoch or LearnerConfig.GenerateInterval.
func NewLearner(cfg LearnerConfig) *Learner { return siggen.NewService(cfg) }

// NewHTTPPublisher returns a SetPublisher that POSTs accepted sets to
// the sigserver at base, authenticating with token when non-empty. The
// returned publisher also implements NamedSetPublisher, so per-tenant
// sets publish under /sets/{tenant}/.
func NewHTTPPublisher(base, token string) SetPublisher { return siggen.NewHTTPPublisher(base, token) }

// PoolReloader returns a LearnerConfig.OnPublishNamed hook that pins
// each published tenant set into the Pool via ReloadTenant — the
// in-process route for per-tenant learned signatures. The global set is
// deliberately not installed as the pool default (it is the union across
// tenants; see siggen.PoolReloader).
func PoolReloader(p *Pool) func(name string, set *SignatureSet) {
	return siggen.PoolReloader(p)
}

// MetricsRegistry collects Prometheus text-format metric families from
// registered collectors and serves them over HTTP (see internal/obs).
// Project engines, pools, and learners into one with EngineMetrics,
// PoolMetrics, and LearnerMetrics, then mount Registry.Handler as
// GET /metrics.
type MetricsRegistry = obs.Registry

// MetricsCollector contributes metric families to a MetricsRegistry
// scrape.
type MetricsCollector = obs.Collector

// NewMetricsRegistry returns an empty registry pre-loaded with nothing;
// most callers immediately Register BuildInfoMetrics() plus the
// subsystem collectors.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// EngineMetrics projects a StreamEngine's snapshot (with the per-shard
// breakdown) into the leaksig_engine_* families at scrape time.
func EngineMetrics(e *StreamEngine) MetricsCollector {
	return obs.EngineCollector(e.Metrics, e.ShardStats)
}

// PoolMetrics projects a Pool's snapshot — lifecycle gauges, the
// eviction-surviving aggregate, and each live tenant under its label.
func PoolMetrics(p *Pool) MetricsCollector { return obs.PoolCollector(p.Metrics) }

// LearnerMetrics projects a Learner's stats into the leaksig_siggen_*
// families.
func LearnerMetrics(l *Learner) MetricsCollector { return obs.SiggenCollector(l.Stats) }

// BuildInfoMetrics emits the constant leaksig_build_info gauge (module
// version and Go toolchain as labels).
func BuildInfoMetrics() MetricsCollector { return obs.BuildInfoCollector() }

// EventShipper batches structured ops events into NDJSON uploads
// without ever blocking its producers: bounded buffer, flush on
// size/interval, retry with backoff, explicit drop accounting (see
// internal/obs).
type EventShipper = obs.Shipper

// EventShipperConfig parameterizes NewEventShipper.
type EventShipperConfig = obs.ShipperConfig

// OpsEvent is one structured ops-plane record (verdict, publish,
// retire, reload, decision, ...).
type OpsEvent = obs.Event

// NewEventShipper starts a shipper; its Collect method doubles as a
// MetricsCollector so event loss is scrapeable.
func NewEventShipper(cfg EventShipperConfig) *EventShipper { return obs.NewShipper(cfg) }

// IntakeLimiter enforces a per-tenant token-bucket intake limit with a
// bounded tenant table and eviction-surviving aggregate accounting (see
// internal/obs). Register it on a MetricsRegistry to scrape the
// leaksig_intake_* families.
type IntakeLimiter = obs.RateLimiter

// IntakeLimiterConfig parameterizes NewIntakeLimiter.
type IntakeLimiterConfig = obs.RateLimiterConfig

// NewIntakeLimiter builds a limiter; Rate <= 0 yields a pass-through
// limiter that still keeps per-tenant intake accounting.
func NewIntakeLimiter(cfg IntakeLimiterConfig) *IntakeLimiter { return obs.NewRateLimiter(cfg) }

// Tracer head-samples packets into pipeline spans: 1 in N submitted
// packets gets a Span whose nanosecond stage timestamps (ingest →
// rate-limit → enqueue → drain → match → sink; on the miss path
// reservoir → cluster → distill → publish → reload apply) feed the
// leaksig_stage_seconds histograms on finish. Unsampled packets pay one
// nil check. A nil *Tracer is fully inert (see internal/obs/trace).
type Tracer = trace.Tracer

// Span is one sampled packet's journey through the pipeline. Stamp
// records a stage timestamp; Hold/Finish manage the reference count
// across ownership handoffs (engine → learner); the last Finish flushes
// stage deltas into the tracer's histograms and recycles the span.
type Span = trace.Span

// TraceStage identifies one pipeline stage a Span can stamp.
type TraceStage = trace.Stage

// NewTracer builds a tracer sampling 1 in every packets (0 disables
// head sampling; Adopt and Observe still work, so cross-process trace
// continuation is independent of the local sampling rate).
func NewTracer(every int) *Tracer { return trace.NewTracer(every) }

// FlightRecorder is the always-on bounded ring of structured pipeline
// events (drops, sink stalls, reload tickets, batch-target changes) with
// trigger-based dumping — the post-hoc "what just happened" plane that
// complements sampled tracing (see internal/obs/trace). Attach one via
// StreamConfig.Flight and mount its dump via DebugHandler's
// GET /debug/flight.
type FlightRecorder = trace.Flight

// FlightEvent is one recorded flight event.
type FlightEvent = trace.FlightEvent

// NewFlightRecorder builds a recorder striped across shards engine
// shards (stripe 0 holds engine-scope events); depth <= 0 selects the
// default per-stripe ring depth.
func NewFlightRecorder(shards, depth int) *FlightRecorder { return trace.NewFlight(shards, depth) }

// TracerMetrics projects a Tracer's per-stage histograms and span
// accounting into the leaksig_stage_seconds and leaksig_trace_* families.
func TracerMetrics(t *Tracer) MetricsCollector { return obs.TracerCollector(t) }

// FlightMetrics projects a FlightRecorder's accounting into the
// leaksig_flight_* families.
func FlightMetrics(f *FlightRecorder) MetricsCollector { return obs.FlightCollector(f) }

// Dataset is a synthetic capture with its device and ground truth.
type Dataset struct {
	Packets   []*Packet
	Sensitive []bool // ground-truth label per packet (the payload check)
	inner     *trafficgen.Dataset
}

// SyntheticDataset fabricates a dataset calibrated to the paper's
// measurement (1,188 apps / 107,859 packets at full scale). numApps and
// totalPackets of 0 select the paper's values; seed fixes every random
// choice.
func SyntheticDataset(seed int64, numApps, totalPackets int) *Dataset {
	ds := trafficgen.Generate(trafficgen.Config{
		Seed:         seed,
		NumApps:      numApps,
		TotalPackets: totalPackets,
	})
	oracle := sensitive.NewOracle(ds.Device)
	labels := make([]bool, ds.Capture.Len())
	for i, p := range ds.Capture.Packets {
		labels[i] = oracle.IsSensitive(p)
	}
	return &Dataset{Packets: ds.Capture.Packets, Sensitive: labels, inner: ds}
}

// SuspiciousPackets returns the packets the payload check labels sensitive.
func (d *Dataset) SuspiciousPackets() []*Packet {
	var out []*Packet
	for i, p := range d.Packets {
		if d.Sensitive[i] {
			out = append(out, p)
		}
	}
	return out
}
