module leaksig

go 1.24
